//! The GRAPE gradient-descent loop.
//!
//! GRAPE treats the device as a black box mapping time-discretized control pulses to
//! the unitary they realize, and performs gradient descent over pulse space to reach a
//! target unitary (Section 5 of the paper). Gradients are computed *exactly* by
//! diagonalizing each slice Hamiltonian and applying the Daleckii–Krein divided-
//! difference formula for the derivative of the matrix exponential, mirroring the
//! automatic-differentiation exactness of the TensorFlow implementation the paper uses.
//! The optimizer is ADAM with exponential learning-rate decay — the two hyperparameters
//! that flexible partial compilation tunes per subcircuit (Section 7.2).

use crate::memo::EigenMemo;
use crate::workspace::GrapeWorkspace;
use crate::{DeviceModel, PulseError, PulseSequence};
use serde::{Deserialize, Serialize};
use vqc_linalg::Matrix;

/// Hyperparameters and budget for one GRAPE run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrapeOptions {
    /// Sample period of the control waveforms, in nanoseconds. The paper's standard
    /// setting is 0.05 ns (20 GSa/s); the "realistic" setting of Section 8.3 is 1 ns.
    pub dt_ns: f64,
    /// Maximum number of gradient-descent iterations.
    pub max_iterations: usize,
    /// Target trace infidelity; the paper uses 1e-3 (99.9 % fidelity).
    pub target_infidelity: f64,
    /// ADAM learning rate (the primary tuned hyperparameter).
    pub learning_rate: f64,
    /// Multiplicative learning-rate decay applied every iteration (the second tuned
    /// hyperparameter).
    pub decay_rate: f64,
    /// Weight of the pulse-energy (amplitude) regularizer.
    pub amplitude_penalty: f64,
    /// Weight of the slice-to-slice smoothness regularizer.
    pub smoothness_penalty: f64,
    /// Weight of the Gaussian-envelope regularizer that forces pulses to start and end
    /// near zero (used by the "realistic" settings).
    pub envelope_penalty: f64,
    /// Seed selecting the deterministic initial guess.
    pub seed: u64,
}

impl Default for GrapeOptions {
    fn default() -> Self {
        GrapeOptions::standard()
    }
}

impl GrapeOptions {
    /// Balanced settings used by the test-suite and the `fast` benchmark effort level:
    /// coarse 0.5 ns samples and a 1 % infidelity target.
    pub fn fast() -> Self {
        GrapeOptions {
            dt_ns: 0.5,
            max_iterations: 300,
            target_infidelity: 1e-2,
            learning_rate: 0.1,
            decay_rate: 0.999,
            amplitude_penalty: 0.0,
            smoothness_penalty: 0.0,
            envelope_penalty: 0.0,
            seed: 1,
        }
    }

    /// Standard settings: 0.25 ns samples and a 0.1 % infidelity target.
    pub fn standard() -> Self {
        GrapeOptions {
            dt_ns: 0.25,
            max_iterations: 1000,
            target_infidelity: 1e-3,
            learning_rate: 0.08,
            decay_rate: 0.9995,
            amplitude_penalty: 0.0,
            smoothness_penalty: 0.0,
            envelope_penalty: 0.0,
            seed: 1,
        }
    }

    /// The paper's settings: 0.05 ns samples (20 GSa/s) and 99.9 % target fidelity.
    /// Expect long compile times — this is exactly the latency problem partial
    /// compilation addresses.
    pub fn paper() -> Self {
        GrapeOptions {
            dt_ns: 0.05,
            max_iterations: 4000,
            target_infidelity: 1e-3,
            learning_rate: 0.05,
            decay_rate: 0.9998,
            amplitude_penalty: 0.0,
            smoothness_penalty: 0.0,
            envelope_penalty: 0.0,
            seed: 1,
        }
    }

    /// Returns a copy with the two tuned hyperparameters replaced. This is the knob
    /// flexible partial compilation turns per subcircuit.
    pub fn with_hyperparameters(&self, learning_rate: f64, decay_rate: f64) -> Self {
        GrapeOptions {
            learning_rate,
            decay_rate,
            ..self.clone()
        }
    }
}

/// The outcome of one GRAPE run at a fixed pulse duration.
#[derive(Debug, Clone)]
pub struct GrapeResult {
    /// The optimized pulse.
    pub pulse: PulseSequence,
    /// Trace infidelity of the final pulse against the target.
    pub infidelity: f64,
    /// Number of gradient iterations performed.
    pub iterations: usize,
    /// Whether the target infidelity was reached within the iteration budget.
    pub converged: bool,
    /// Total cost (infidelity + regularizers) after every iteration.
    pub cost_history: Vec<f64>,
}

/// Number of gradient-descent parameters (controls × slices) in a run, a proxy for the
/// per-iteration compilation cost used by the latency model.
pub fn parameter_count(device: &DeviceModel, num_slices: usize) -> usize {
    device.num_controls() * num_slices
}

/// Trace infidelity of a pulse against a device-space target, together with its exact
/// gradient with respect to every control amplitude.
#[derive(Debug, Clone)]
pub struct FidelityGradient {
    /// `1 - |Tr(V† U)|² / d²` for the zero-padded (device-space) target, where `d` is
    /// the qubit-subspace dimension.
    pub infidelity: f64,
    /// `gradient[k][t]` = ∂(infidelity)/∂u_k(t).
    pub gradient: Vec<Vec<f64>>,
}

/// Computes the trace infidelity of a pulse and its exact gradient.
///
/// The target is a `2^n x 2^n` unitary on the device's *qubit subspace*; it is
/// zero-padded onto any leakage levels, so the fidelity measures only the action inside
/// the computational subspace and leaked population counts as error. The gradient of
/// the *infidelity* is returned, so gradient *descent* reduces the infidelity.
///
/// This convenience wrapper allocates a fresh [`GrapeWorkspace`] per call — exactly
/// what the seed implementation did implicitly. The optimizer loop constructs one
/// workspace and calls [`GrapeWorkspace::fidelity_gradient`] directly, which is
/// allocation-free across iterations.
pub fn fidelity_gradient(
    target: &Matrix,
    device: &DeviceModel,
    pulse: &PulseSequence,
) -> FidelityGradient {
    let mut workspace = GrapeWorkspace::new(device, pulse.num_slices());
    workspace.set_target(device, target);
    let infidelity = workspace.fidelity_gradient(pulse);
    FidelityGradient {
        infidelity,
        gradient: workspace.gradient().to_vec(),
    }
}

/// Runs GRAPE for a target unitary at a fixed total pulse duration.
///
/// The target is a `2^n x 2^n` unitary on the device's qubit subspace; for qutrit
/// devices it is embedded as the identity on leakage levels, so any population that
/// leaks out of the computational subspace shows up as infidelity.
///
/// # Panics
///
/// Panics if the target dimension does not match the device or the duration is shorter
/// than one sample period. Use [`try_optimize_pulse`] for a fallible variant.
pub fn optimize_pulse(
    target: &Matrix,
    device: &DeviceModel,
    duration_ns: f64,
    options: &GrapeOptions,
) -> GrapeResult {
    // audit:allow(unwrap): documented panicking variant; try_optimize_pulse is the fallible API
    try_optimize_pulse(target, device, duration_ns, options).expect("invalid GRAPE inputs")
}

/// Fallible variant of [`optimize_pulse`].
///
/// # Errors
///
/// * [`PulseError::DimensionMismatch`] if the target is not a qubit-subspace unitary of
///   the device.
/// * [`PulseError::DurationTooShort`] if `duration_ns < dt_ns`.
pub fn try_optimize_pulse(
    target: &Matrix,
    device: &DeviceModel,
    duration_ns: f64,
    options: &GrapeOptions,
) -> Result<GrapeResult, PulseError> {
    try_optimize_pulse_with(target, device, duration_ns, options, None, None)
}

/// [`try_optimize_pulse`] with an optional warm start and eigendecomposition memo.
///
/// * `warm_start` — a previously optimized pulse (for the same device) to resample
///   onto this run's slice grid as the initial guess, instead of the seeded sine
///   guess. Ignored if its control count does not match the device. The duration
///   binary search uses this to start each probe from the nearest converged one.
/// * `memo` — a shared [`EigenMemo`]; slice Hamiltonians already diagonalized by
///   any earlier run using the same memo are reused instead of recomputed.
///
/// # Errors
///
/// Same as [`try_optimize_pulse`].
pub fn try_optimize_pulse_with(
    target: &Matrix,
    device: &DeviceModel,
    duration_ns: f64,
    options: &GrapeOptions,
    warm_start: Option<&PulseSequence>,
    mut memo: Option<&mut EigenMemo>,
) -> Result<GrapeResult, PulseError> {
    if target.shape() != (device.qubit_dim(), device.qubit_dim()) {
        return Err(PulseError::DimensionMismatch {
            target_dim: target.rows(),
            device_dim: device.qubit_dim(),
        });
    }
    let num_slices = (duration_ns / options.dt_ns).round() as usize;
    if num_slices == 0 {
        return Err(PulseError::DurationTooShort {
            duration_ns,
            dt_ns: options.dt_ns,
        });
    }

    let dt = options.dt_ns;

    let mut pulse = match warm_start {
        Some(warm) if warm.num_controls() == device.num_controls() => {
            warm.resampled(num_slices, dt)
        }
        _ => PulseSequence::seeded_guess(device, num_slices, dt, options.seed),
    };
    pulse.clamp_to_device(device);

    // All per-iteration buffers live in the workspace, allocated once here; the
    // iteration loop below performs no heap allocation.
    let mut workspace = GrapeWorkspace::new(device, num_slices);
    workspace.set_target(device, target);
    let num_controls = workspace.controls().len();
    let amplitude_limits: Vec<f64> = workspace
        .controls()
        .iter()
        .map(|control| control.max_amplitude)
        .collect();

    // ADAM state, one entry per (control, slice).
    let mut m = vec![vec![0.0; num_slices]; num_controls];
    let mut v = vec![vec![0.0; num_slices]; num_controls];
    let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);

    let mut cost_history = Vec::with_capacity(options.max_iterations);
    let mut best_infidelity = f64::INFINITY;
    // Best-so-far amplitudes are *copied* into this preallocated pulse rather than
    // cloning the whole sequence on every improving iteration.
    let mut best_pulse = pulse.clone();
    let mut iterations = 0;
    let mut learning_rate = options.learning_rate;

    for iter in 0..options.max_iterations {
        iterations = iter + 1;

        let infidelity = match memo.as_deref_mut() {
            Some(m) => workspace.fidelity_gradient_with_memo(&pulse, m),
            None => workspace.fidelity_gradient(&pulse),
        };

        if infidelity < best_infidelity {
            best_infidelity = infidelity;
            for (k, waveform) in best_pulse.waveforms_mut().iter_mut().enumerate() {
                waveform.copy_from_slice(pulse.waveform(k));
            }
        }

        // --- cost (for the history) -------------------------------------------------
        let mut cost = infidelity;
        cost += options.amplitude_penalty * pulse.energy();
        if options.smoothness_penalty > 0.0 || options.envelope_penalty > 0.0 {
            for k in 0..num_controls {
                let w = pulse.waveform(k);
                if options.smoothness_penalty > 0.0 {
                    for t in 1..num_slices {
                        let d = w[t] - w[t - 1];
                        cost += options.smoothness_penalty * d * d;
                    }
                }
                if options.envelope_penalty > 0.0 {
                    for (t, &value) in w.iter().enumerate() {
                        let x = (t as f64 + 0.5) / num_slices as f64 - 0.5;
                        let envelope = (-x * x / 0.08).exp();
                        cost += options.envelope_penalty * (1.0 - envelope) * value * value;
                    }
                }
            }
        }
        cost_history.push(cost);

        if infidelity <= options.target_infidelity {
            return Ok(GrapeResult {
                pulse: best_pulse,
                infidelity: best_infidelity,
                iterations,
                converged: true,
                cost_history,
            });
        }

        // --- parameter update -------------------------------------------------------
        for t in 0..num_slices {
            for k in 0..num_controls {
                let u_kt = pulse.amplitude(k, t);
                let mut grad = workspace.gradient()[k][t];
                grad += 2.0 * options.amplitude_penalty * u_kt * dt;
                if options.smoothness_penalty > 0.0 {
                    if t > 0 {
                        grad +=
                            2.0 * options.smoothness_penalty * (u_kt - pulse.amplitude(k, t - 1));
                    }
                    if t + 1 < num_slices {
                        grad -=
                            2.0 * options.smoothness_penalty * (pulse.amplitude(k, t + 1) - u_kt);
                    }
                }
                if options.envelope_penalty > 0.0 {
                    let x = (t as f64 + 0.5) / num_slices as f64 - 0.5;
                    let envelope = (-x * x / 0.08).exp();
                    grad += 2.0 * options.envelope_penalty * (1.0 - envelope) * u_kt;
                }

                m[k][t] = beta1 * m[k][t] + (1.0 - beta1) * grad;
                v[k][t] = beta2 * v[k][t] + (1.0 - beta2) * grad * grad;
                let m_hat = m[k][t] / (1.0 - beta1.powi(iterations as i32));
                let v_hat = v[k][t] / (1.0 - beta2.powi(iterations as i32));
                let step = learning_rate * m_hat / (v_hat.sqrt() + eps);
                // Clamping inline keeps the hardware amplitude limits enforced
                // without the per-iteration `clamp_to_device` pass (which rebuilt
                // the control Hamiltonians — an allocation — every call).
                let limit = amplitude_limits[k];
                pulse.set_amplitude(k, t, (u_kt - step).clamp(-limit, limit));
            }
        }
        learning_rate *= options.decay_rate;
    }

    Ok(GrapeResult {
        pulse: best_pulse,
        infidelity: best_infidelity,
        iterations,
        converged: best_infidelity <= options.target_infidelity,
        cost_history,
    })
}

/// Computes the trace infidelity of a pulse against a qubit-subspace target, without
/// optimizing. Useful for verifying stored pulses.
pub fn evaluate_pulse(target: &Matrix, device: &DeviceModel, pulse: &PulseSequence) -> f64 {
    let padded_dagger = device.pad_qubit_unitary(target).dagger();
    let realized = crate::propagate::final_unitary(device, pulse);
    let d = device.qubit_dim() as f64;
    let overlap = padded_dagger.matmul(&realized).trace() / d;
    1.0 - overlap.norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use vqc_sim::gates;

    #[test]
    fn finds_x_gate_pulse_on_one_qubit() {
        let device = DeviceModel::qubits_line(1);
        let target = gates::x();
        let result = optimize_pulse(&target, &device, 3.0, &GrapeOptions::fast());
        assert!(
            result.infidelity < 1e-2,
            "infidelity {} after {} iterations",
            result.infidelity,
            result.iterations
        );
        assert!(result.converged);
    }

    #[test]
    fn finds_hadamard_pulse_on_one_qubit() {
        let device = DeviceModel::qubits_line(1);
        let target = gates::h();
        let result = optimize_pulse(&target, &device, 2.0, &GrapeOptions::fast());
        assert!(result.infidelity < 1e-2, "infidelity {}", result.infidelity);
    }

    #[test]
    fn z_rotations_need_very_little_time() {
        // The flux drive is 15x stronger, so an Rz(π/2) should converge even at 0.5 ns.
        let device = DeviceModel::qubits_line(1);
        let target = gates::rz(PI / 2.0);
        let result = optimize_pulse(&target, &device, 0.5, &GrapeOptions::fast());
        assert!(result.infidelity < 1e-2, "infidelity {}", result.infidelity);
    }

    #[test]
    fn finds_two_qubit_entangling_pulse() {
        // A CZ-equivalent on two coupled qubits. 12 ns is comfortably above the
        // interaction-limited minimum (~5 ns) for this device.
        let device = DeviceModel::qubits_line(2);
        let target = gates::cz();
        let mut options = GrapeOptions::fast();
        options.max_iterations = 400;
        options.target_infidelity = 3e-2;
        let result = optimize_pulse(&target, &device, 12.0, &options);
        assert!(result.infidelity < 0.05, "infidelity {}", result.infidelity);
    }

    #[test]
    fn impossible_duration_does_not_converge() {
        // An X gate needs ~2.5 ns at the hardware amplitude limit; 0.5 ns cannot work.
        let device = DeviceModel::qubits_line(1);
        let target = gates::x();
        let result = optimize_pulse(&target, &device, 0.5, &GrapeOptions::fast());
        assert!(!result.converged);
        assert!(result.infidelity > 0.1);
    }

    #[test]
    fn evaluate_pulse_matches_reported_infidelity() {
        let device = DeviceModel::qubits_line(1);
        let target = gates::h();
        let result = optimize_pulse(&target, &device, 2.0, &GrapeOptions::fast());
        let evaluated = evaluate_pulse(&target, &device, &result.pulse);
        assert!((evaluated - result.infidelity).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // Validate the exact analytic gradient against a numerical derivative, both
        // through the allocating wrapper and through a reused GrapeWorkspace (the
        // path the optimizer iterates on).
        let device = DeviceModel::qubits_line(2);
        let target = gates::cx();
        let dt = 0.5;
        let pulse = PulseSequence::seeded_guess(&device, 6, dt, 3);
        let analytic = fidelity_gradient(&target, &device, &pulse);

        let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
        workspace.set_target(&device, &target);
        let workspace_infidelity = workspace.fidelity_gradient(&pulse);
        assert!((workspace_infidelity - analytic.infidelity).abs() < 1e-12);

        let eps = 1e-6;
        for &(k, t) in &[(0usize, 2usize), (2, 0), (4, 5), (1, 3)] {
            let mut plus = pulse.clone();
            plus.set_amplitude(k, t, plus.amplitude(k, t) + eps);
            let mut minus = pulse.clone();
            minus.set_amplitude(k, t, minus.amplitude(k, t) - eps);
            // Drive the probes through the same reused workspace so the test also
            // catches state leaking between fidelity_gradient calls.
            let f_plus = workspace.fidelity_gradient(&plus);
            let f_minus = workspace.fidelity_gradient(&minus);
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let reference = numeric.abs().max(1e-6);
            assert!(
                (analytic.gradient[k][t] - numeric).abs() / reference < 1e-3,
                "control {k} slice {t}: analytic {} vs numeric {numeric}",
                analytic.gradient[k][t]
            );
            let workspace_grad = {
                workspace.fidelity_gradient(&pulse);
                workspace.gradient()[k][t]
            };
            assert!(
                (workspace_grad - analytic.gradient[k][t]).abs() < 1e-12,
                "workspace gradient must match the allocating wrapper exactly"
            );
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let device = DeviceModel::qubits_line(2);
        let target = gates::x(); // 2x2 target for a 4-dimensional device
        assert!(matches!(
            try_optimize_pulse(&target, &device, 3.0, &GrapeOptions::fast()),
            Err(PulseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_duration_is_rejected() {
        let device = DeviceModel::qubits_line(1);
        let target = gates::x();
        assert!(matches!(
            try_optimize_pulse(&target, &device, 0.05, &GrapeOptions::fast()),
            Err(PulseError::DurationTooShort { .. })
        ));
    }

    #[test]
    fn hyperparameter_override_changes_only_the_two_knobs() {
        let base = GrapeOptions::fast();
        let tuned = base.with_hyperparameters(0.3, 0.95);
        assert_eq!(tuned.learning_rate, 0.3);
        assert_eq!(tuned.decay_rate, 0.95);
        assert_eq!(tuned.dt_ns, base.dt_ns);
        assert_eq!(tuned.max_iterations, base.max_iterations);
    }

    #[test]
    fn cost_history_tracks_iterations() {
        let device = DeviceModel::qubits_line(1);
        let target = gates::rz(0.3);
        let result = optimize_pulse(&target, &device, 0.5, &GrapeOptions::fast());
        assert_eq!(result.cost_history.len(), result.iterations);
        assert!(!result.cost_history.is_empty());
    }

    #[test]
    fn qutrit_device_still_reaches_qubit_targets() {
        let device = DeviceModel::qubits_line(1).with_qutrit_levels();
        let mut options = GrapeOptions::fast();
        options.target_infidelity = 3e-2;
        let result = optimize_pulse(&gates::rz(1.0), &device, 1.0, &options);
        assert!(result.infidelity < 5e-2, "infidelity {}", result.infidelity);
    }
}
