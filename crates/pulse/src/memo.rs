//! Eigendecomposition memoization across GRAPE runs.
//!
//! The duration binary search in [`crate::minimum_time`] and the hyperparameter
//! grid in `vqc-core` launch many GRAPE runs against the *same* device, and
//! those runs repeatedly diagonalize identical slice Hamiltonians: every probe
//! starts from the same seeded guess, warm-started probes revisit converged
//! amplitudes, and re-tuning replays whole trajectories. A slice Hamiltonian is
//! fully determined by `(Δt, control amplitudes)`, so an [`EigenMemo`] keyed by
//! the quantized amplitude vector returns the cached `(λ, V)` pair instead of
//! re-running Jacobi.
//!
//! The memo is allocation-free on a hit: the lookup key is built in a reusable
//! scratch buffer and borrowed straight into the map (`Box<[i64]>` keys are
//! queried through `Borrow<[i64]>`). Only a miss allocates — once, for the
//! inserted entry — which the counting-allocator test in
//! `crates/pulse/tests/alloc_free.rs` asserts.

use std::collections::HashMap;
use vqc_linalg::C64;

/// Quantization step for memo keys, in the amplitude unit (rad/ns) and
/// nanoseconds for Δt. Two Hamiltonians whose parameters agree to within half a
/// quantum share a cache entry; at 1e-9 rad/ns the eigensystem difference is far
/// below every convergence tolerance in the optimizer.
pub const AMPLITUDE_QUANTUM: f64 = 1e-9;

/// Default bound on stored entries. Entries are admitted first-come-first-kept:
/// once full, new systems are computed but not cached, which preserves the
/// early-trajectory entries that probes actually share.
const DEFAULT_CAPACITY: usize = 32_768;

/// One cached eigendecomposition: `H = V · diag(λ) · V†`.
#[derive(Debug, Clone)]
struct EigenEntry {
    lambdas: Box<[f64]>,
    /// Row-major eigenvector matrix, `dim * dim` entries.
    vectors: Box<[C64]>,
}

/// A per-run cache of slice-Hamiltonian eigendecompositions keyed by
/// `(dim, quantized Δt, quantized control amplitudes)`.
///
/// The intended flow is a probe/store pair per slice:
/// [`EigenMemo::probe_with`] either delivers the cached `(λ, V)` through a
/// closure (hit) or arms the memo with the missed key; after computing the
/// decomposition, [`EigenMemo::store_probed`] files it under that armed key.
#[derive(Debug, Clone, Default)]
pub struct EigenMemo {
    map: HashMap<Box<[i64]>, EigenEntry>,
    /// Reusable key scratch so hits never allocate.
    key: Vec<i64>,
    /// Whether `key` holds a missed key awaiting [`EigenMemo::store_probed`].
    armed: bool,
    capacity: usize,
    hits: u64,
    misses: u64,
    rejected_inserts: u64,
}

impl EigenMemo {
    /// Creates an empty memo with the default entry bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty memo bounded to at most `max_entries` cached systems.
    pub fn with_capacity(max_entries: usize) -> Self {
        EigenMemo {
            map: HashMap::new(),
            key: Vec::new(),
            armed: false,
            capacity: max_entries,
            hits: 0,
            misses: 0,
            rejected_inserts: 0,
        }
    }

    #[inline]
    fn quantize(value: f64) -> i64 {
        (value / AMPLITUDE_QUANTUM).round() as i64
    }

    /// Looks up the eigendecomposition of the slice Hamiltonian determined by
    /// `(dim, dt_ns, amplitudes)`. On a hit, `on_hit` receives the cached
    /// eigenvalues (ascending, `dim` of them) and the row-major eigenvector
    /// matrix (`dim * dim` entries) and the call returns `true` without
    /// allocating. On a miss it returns `false` and arms the memo so the caller
    /// can compute the decomposition and file it with
    /// [`EigenMemo::store_probed`].
    pub fn probe_with(
        &mut self,
        dim: usize,
        dt_ns: f64,
        amplitudes: impl Iterator<Item = f64>,
        on_hit: impl FnOnce(&[f64], &[C64]),
    ) -> bool {
        self.key.clear();
        self.key.push(dim as i64);
        self.key.push(Self::quantize(dt_ns));
        self.key.extend(amplitudes.map(Self::quantize));
        if let Some(entry) = self.map.get(self.key.as_slice()) {
            self.hits += 1;
            self.armed = false;
            on_hit(&entry.lambdas, &entry.vectors);
            true
        } else {
            self.misses += 1;
            self.armed = true;
            false
        }
    }

    /// Files a freshly computed eigendecomposition under the key armed by the
    /// last missed [`EigenMemo::probe_with`]. A no-op if no probe is armed, or
    /// if the memo is at capacity (the system is simply not cached).
    pub fn store_probed(&mut self, lambdas: &[f64], vectors: impl Iterator<Item = C64>) {
        if !self.armed {
            return;
        }
        self.armed = false;
        if self.map.len() >= self.capacity {
            self.rejected_inserts += 1;
            return;
        }
        self.map.insert(
            self.key.clone().into_boxed_slice(),
            EigenEntry {
                lambdas: lambdas.into(),
                vectors: vectors.collect(),
            },
        );
    }

    /// Number of cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of probes that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of systems recomputed but not cached because the memo was full.
    pub fn rejected_inserts(&self) -> u64 {
        self.rejected_inserts
    }

    /// Number of cached eigendecompositions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_linalg::c64;

    #[test]
    fn probe_miss_then_store_then_hit() {
        let mut memo = EigenMemo::new();
        let amps = [0.25, -0.5];
        assert!(!memo.probe_with(2, 0.5, amps.iter().copied(), |_, _| panic!("miss expected")));
        memo.store_probed(
            &[-1.0, 1.0],
            [c64(1.0, 0.0), C64::ZERO, C64::ZERO, c64(0.0, 1.0)].into_iter(),
        );
        assert_eq!(memo.len(), 1);

        let mut seen = None;
        assert!(memo.probe_with(2, 0.5, amps.iter().copied(), |l, v| {
            seen = Some((l.to_vec(), v.to_vec()));
        }));
        let (lambdas, vectors) = seen.expect("hit closure must run");
        assert_eq!(lambdas, vec![-1.0, 1.0]);
        assert_eq!(vectors[3], c64(0.0, 1.0));
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn keys_distinguish_dim_dt_and_amplitudes() {
        let mut memo = EigenMemo::new();
        let store = |m: &mut EigenMemo| m.store_probed(&[0.0], [C64::ONE].into_iter());
        assert!(!memo.probe_with(1, 0.5, [0.1].into_iter(), |_, _| {}));
        store(&mut memo);
        // Same amplitudes, different dt or dim: miss.
        assert!(!memo.probe_with(1, 0.25, [0.1].into_iter(), |_, _| {}));
        store(&mut memo);
        assert!(!memo.probe_with(2, 0.5, [0.1].into_iter(), |_, _| {}));
        store(&mut memo);
        // Amplitude differing by more than a quantum: miss.
        assert!(!memo.probe_with(
            1,
            0.5,
            [0.1 + 3.0 * AMPLITUDE_QUANTUM].into_iter(),
            |_, _| {}
        ));
        store(&mut memo);
        // Amplitude within half a quantum: hit.
        assert!(memo.probe_with(
            1,
            0.5,
            [0.1 + 0.4 * AMPLITUDE_QUANTUM].into_iter(),
            |_, _| {}
        ));
        assert_eq!(memo.len(), 4);
    }

    #[test]
    fn capacity_bounds_inserts() {
        let mut memo = EigenMemo::with_capacity(1);
        assert!(!memo.probe_with(1, 0.5, [0.0].into_iter(), |_, _| {}));
        memo.store_probed(&[0.0], [C64::ONE].into_iter());
        assert!(!memo.probe_with(1, 0.5, [1.0].into_iter(), |_, _| {}));
        memo.store_probed(&[1.0], [C64::ONE].into_iter());
        assert_eq!(memo.len(), 1, "full memo must reject new entries");
        assert_eq!(memo.rejected_inserts(), 1);
        // The retained entry still hits.
        assert!(memo.probe_with(1, 0.5, [0.0].into_iter(), |_, _| {}));
    }

    #[test]
    fn store_without_armed_probe_is_a_noop() {
        let mut memo = EigenMemo::new();
        memo.store_probed(&[0.0], [C64::ONE].into_iter());
        assert!(memo.is_empty());
    }
}
