//! Piecewise-constant control pulses.

use crate::DeviceModel;
use serde::{Deserialize, Serialize};

/// A piecewise-constant control pulse for every control knob of a device.
///
/// `amplitudes[k][t]` is the amplitude (rad/ns) of control `k` during time slice `t`;
/// every slice lasts [`PulseSequence::dt_ns`] nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PulseSequence {
    dt_ns: f64,
    amplitudes: Vec<Vec<f64>>,
}

impl PulseSequence {
    /// Creates an all-zero pulse with `num_controls` waveforms of `num_slices` samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0` or `num_slices == 0`.
    pub fn zeros(num_controls: usize, num_slices: usize, dt_ns: f64) -> Self {
        assert!(dt_ns > 0.0, "sample period must be positive");
        assert!(num_slices > 0, "a pulse needs at least one time slice");
        PulseSequence {
            dt_ns,
            amplitudes: vec![vec![0.0; num_slices]; num_controls],
        }
    }

    /// Creates a deterministic low-amplitude initial guess for GRAPE.
    ///
    /// Each control starts as a small sinusoid scaled to a fraction of its hardware
    /// limit; different controls get different phases so the optimizer does not start
    /// from a symmetric saddle point. The construction is deterministic so results are
    /// reproducible, with `seed` selecting a different phase offset family.
    pub fn seeded_guess(device: &DeviceModel, num_slices: usize, dt_ns: f64, seed: u64) -> Self {
        let controls = device.control_hamiltonians();
        let mut pulse = PulseSequence::zeros(controls.len(), num_slices, dt_ns);
        for (k, control) in controls.iter().enumerate() {
            let phase = 0.7 * k as f64 + 0.13 * seed as f64;
            let scale = 0.3 * control.max_amplitude;
            for t in 0..num_slices {
                let x = t as f64 / num_slices as f64;
                pulse.amplitudes[k][t] = scale * (2.0 * std::f64::consts::PI * x + phase).sin();
            }
        }
        pulse
    }

    /// Sample period in nanoseconds.
    pub fn dt_ns(&self) -> f64 {
        self.dt_ns
    }

    /// Number of control waveforms.
    pub fn num_controls(&self) -> usize {
        self.amplitudes.len()
    }

    /// Number of time slices per waveform.
    pub fn num_slices(&self) -> usize {
        self.amplitudes.first().map(Vec::len).unwrap_or(0)
    }

    /// Total pulse duration in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        self.dt_ns * self.num_slices() as f64
    }

    /// Amplitude of control `k` at slice `t`.
    pub fn amplitude(&self, k: usize, t: usize) -> f64 {
        self.amplitudes[k][t]
    }

    /// Sets the amplitude of control `k` at slice `t`.
    pub fn set_amplitude(&mut self, k: usize, t: usize, value: f64) {
        self.amplitudes[k][t] = value;
    }

    /// The waveform of control `k`.
    pub fn waveform(&self, k: usize) -> &[f64] {
        &self.amplitudes[k]
    }

    /// Mutable access to all waveforms.
    pub fn waveforms_mut(&mut self) -> &mut Vec<Vec<f64>> {
        &mut self.amplitudes
    }

    /// Clamps every waveform to the hardware amplitude limits of `device`.
    ///
    /// # Panics
    ///
    /// Panics if the number of waveforms does not match the device's control count.
    pub fn clamp_to_device(&mut self, device: &DeviceModel) {
        let controls = device.control_hamiltonians();
        assert_eq!(
            controls.len(),
            self.num_controls(),
            "pulse was built for a different device"
        );
        for (k, control) in controls.iter().enumerate() {
            for value in &mut self.amplitudes[k] {
                *value = value.clamp(-control.max_amplitude, control.max_amplitude);
            }
        }
    }

    /// Resamples every waveform onto a new slice grid by midpoint linear
    /// interpolation, preserving the pulse shape across a duration change. This
    /// is how the duration binary search warm-starts each probe from the nearest
    /// converged one. Resampling onto the same `(num_slices, dt_ns)` grid is an
    /// exact copy, so warm-started slices can still hit the eigendecomposition
    /// memo.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0` or `num_slices == 0`.
    pub fn resampled(&self, num_slices: usize, dt_ns: f64) -> Self {
        let mut out = PulseSequence::zeros(self.num_controls(), num_slices, dt_ns);
        let src_n = self.num_slices();
        if num_slices == src_n {
            for (dst, src) in out.amplitudes.iter_mut().zip(self.amplitudes.iter()) {
                dst.copy_from_slice(src);
            }
            return out;
        }
        for (dst, src) in out.amplitudes.iter_mut().zip(self.amplitudes.iter()) {
            for (t, slot) in dst.iter_mut().enumerate() {
                // Midpoint of destination slice t in normalized time, mapped onto
                // fractional source-slice coordinates.
                let x = (t as f64 + 0.5) / num_slices as f64;
                let pos = (x * src_n as f64 - 0.5).clamp(0.0, (src_n - 1) as f64);
                let i0 = pos.floor() as usize;
                let i1 = (i0 + 1).min(src_n - 1);
                let frac = pos - i0 as f64;
                *slot = src[i0] * (1.0 - frac) + src[i1] * frac;
            }
        }
        out
    }

    /// Largest absolute amplitude across all waveforms (rad/ns).
    pub fn max_abs_amplitude(&self) -> f64 {
        self.amplitudes
            .iter()
            .flat_map(|w| w.iter())
            .map(|v| v.abs())
            .fold(0.0, f64::max)
    }

    /// Total pulse energy `Σ_k Σ_t u_k(t)² · Δt`, used by the amplitude regularizer.
    pub fn energy(&self) -> f64 {
        self.amplitudes
            .iter()
            .flat_map(|w| w.iter())
            .map(|v| v * v * self.dt_ns)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CHARGE_DRIVE_MAX;

    #[test]
    fn zero_pulse_shape() {
        let p = PulseSequence::zeros(3, 10, 0.5);
        assert_eq!(p.num_controls(), 3);
        assert_eq!(p.num_slices(), 10);
        assert!((p.duration_ns() - 5.0).abs() < 1e-12);
        assert_eq!(p.max_abs_amplitude(), 0.0);
        assert_eq!(p.energy(), 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn seeded_guess_respects_amplitude_limits() {
        let device = DeviceModel::qubits_line(2);
        let p = PulseSequence::seeded_guess(&device, 20, 0.5, 1);
        assert_eq!(p.num_controls(), device.num_controls());
        let controls = device.control_hamiltonians();
        for k in 0..p.num_controls() {
            for t in 0..p.num_slices() {
                assert!(p.amplitude(k, t).abs() <= controls[k].max_amplitude);
            }
        }
    }

    #[test]
    fn seeded_guess_is_deterministic_and_seed_dependent() {
        let device = DeviceModel::qubits_line(1);
        let a = PulseSequence::seeded_guess(&device, 10, 0.5, 3);
        let b = PulseSequence::seeded_guess(&device, 10, 0.5, 3);
        let c = PulseSequence::seeded_guess(&device, 10, 0.5, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clamping_limits_amplitudes() {
        let device = DeviceModel::qubits_line(1);
        let mut p = PulseSequence::zeros(device.num_controls(), 5, 0.5);
        p.set_amplitude(0, 2, 100.0);
        p.clamp_to_device(&device);
        assert!((p.amplitude(0, 2) - CHARGE_DRIVE_MAX).abs() < 1e-12);
    }

    #[test]
    fn energy_accumulates() {
        let mut p = PulseSequence::zeros(1, 4, 0.5);
        p.set_amplitude(0, 0, 2.0);
        p.set_amplitude(0, 1, -2.0);
        assert!((p.energy() - 2.0 * (4.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one time slice")]
    fn empty_pulse_is_rejected() {
        PulseSequence::zeros(1, 0, 0.5);
    }

    #[test]
    fn resampling_onto_the_same_grid_is_an_exact_copy() {
        let device = DeviceModel::qubits_line(1);
        let p = PulseSequence::seeded_guess(&device, 10, 0.5, 3);
        let q = p.resampled(10, 0.5);
        assert_eq!(p, q);
    }

    #[test]
    fn resampling_interpolates_between_slices() {
        let mut p = PulseSequence::zeros(1, 2, 1.0);
        p.set_amplitude(0, 0, 0.0);
        p.set_amplitude(0, 1, 1.0);
        let q = p.resampled(4, 0.5);
        assert_eq!(q.num_slices(), 4);
        // The ramp stays monotone and bounded by the source extremes.
        let w = q.waveform(0);
        for pair in w.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
        assert!(w.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }

    #[test]
    fn resampling_a_constant_pulse_is_lossless() {
        let mut p = PulseSequence::zeros(2, 7, 0.5);
        for t in 0..7 {
            p.set_amplitude(0, t, 0.4);
            p.set_amplitude(1, t, -0.2);
        }
        for &n in &[3usize, 7, 12, 24] {
            let q = p.resampled(n, 0.25);
            for t in 0..n {
                assert!((q.amplitude(0, t) - 0.4).abs() < 1e-12);
                assert!((q.amplitude(1, t) + 0.2).abs() < 1e-12);
            }
        }
    }
}
