//! The "more realistic" GRAPE settings of Section 8.3.
//!
//! The paper re-ran two benchmarks with three changes to demonstrate that its speedups
//! survive realistic pulse constraints: (1) control waveforms sampled at 1 GSa/s instead
//! of 20 GSa/s, (2) leakage into the third transmon level, (3) aggressive pulse
//! regularization so pulses follow a smooth Gaussian envelope.

use crate::grape::GrapeOptions;
use crate::DeviceModel;
use serde::{Deserialize, Serialize};

/// Which pulse-realism assumptions to apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RealisticSettings {
    /// Waveform sample rate in giga-samples per second (paper: 20 standard, 1 realistic).
    pub sample_rate_gsa: f64,
    /// Whether to simulate the third transmon level (qutrit leakage).
    pub qutrit_leakage: bool,
    /// Whether to apply aggressive smoothness/envelope regularization.
    pub regularization: bool,
}

impl RealisticSettings {
    /// The paper's standard (idealized) settings: 20 GSa/s, binary qubits, no
    /// regularization.
    pub fn standard() -> Self {
        RealisticSettings {
            sample_rate_gsa: 20.0,
            qutrit_leakage: false,
            regularization: false,
        }
    }

    /// The "more realistic" settings of Section 8.3: 1 GSa/s, qutrit leakage, and
    /// aggressive regularization.
    pub fn realistic() -> Self {
        RealisticSettings {
            sample_rate_gsa: 1.0,
            qutrit_leakage: true,
            regularization: true,
        }
    }

    /// Sample period in nanoseconds implied by the sample rate.
    pub fn dt_ns(&self) -> f64 {
        1.0 / self.sample_rate_gsa
    }

    /// Applies these settings to a set of GRAPE options (sample period and
    /// regularization weights).
    pub fn apply_to_options(&self, base: &GrapeOptions) -> GrapeOptions {
        let mut options = base.clone();
        options.dt_ns = self.dt_ns().max(base.dt_ns);
        if self.regularization {
            options.amplitude_penalty = 1e-4;
            options.smoothness_penalty = 5e-3;
            options.envelope_penalty = 5e-3;
        }
        options
    }

    /// Applies these settings to a device model (enabling the leakage level).
    pub fn apply_to_device(&self, device: &DeviceModel) -> DeviceModel {
        if self.qutrit_leakage {
            device.clone().with_qutrit_levels()
        } else {
            device.clone()
        }
    }
}

impl Default for RealisticSettings {
    fn default() -> Self {
        RealisticSettings::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TransmonLevels;
    use crate::grape::optimize_pulse;
    use vqc_sim::gates;

    #[test]
    fn presets_match_section_8_3() {
        let standard = RealisticSettings::standard();
        assert_eq!(standard.sample_rate_gsa, 20.0);
        assert!(!standard.qutrit_leakage);
        assert!((standard.dt_ns() - 0.05).abs() < 1e-12);

        let realistic = RealisticSettings::realistic();
        assert_eq!(realistic.sample_rate_gsa, 1.0);
        assert!(realistic.qutrit_leakage);
        assert!((realistic.dt_ns() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn realistic_options_gain_regularizers_and_coarser_sampling() {
        let base = GrapeOptions::fast();
        let options = RealisticSettings::realistic().apply_to_options(&base);
        assert!(options.dt_ns >= 1.0);
        assert!(options.amplitude_penalty > 0.0);
        assert!(options.smoothness_penalty > 0.0);
        assert!(options.envelope_penalty > 0.0);

        let unchanged = RealisticSettings::standard().apply_to_options(&base);
        assert_eq!(unchanged.amplitude_penalty, 0.0);
    }

    #[test]
    fn realistic_device_has_three_levels() {
        let device = DeviceModel::qubits_line(1);
        let upgraded = RealisticSettings::realistic().apply_to_device(&device);
        assert_eq!(upgraded.levels(), TransmonLevels::Qutrit);
        assert_eq!(upgraded.dim(), 3);
        let untouched = RealisticSettings::standard().apply_to_device(&device);
        assert_eq!(untouched.levels(), TransmonLevels::Qubit);
    }

    #[test]
    fn grape_still_converges_under_realistic_settings_for_z_rotations() {
        // Z rotations are driven by the strong flux control, so even 1 ns sampling with
        // a leakage level and regularization converges quickly.
        let settings = RealisticSettings::realistic();
        let device = settings.apply_to_device(&DeviceModel::qubits_line(1));
        let mut options = settings.apply_to_options(&GrapeOptions::fast());
        options.target_infidelity = 5e-2;
        let result = optimize_pulse(&gates::rz(1.2), &device, 2.0, &options);
        assert!(result.infidelity < 0.1, "infidelity {}", result.infidelity);
    }
}
