//! Transposition-table warm-start index for repeat-structure GRAPE traffic.
//!
//! At production scale the dominant traffic is repeat *structures* with fresh θ
//! bindings: the paper's Figure-4 observation (hyperparameters tuned for a
//! single-angle subcircuit are robust to the value of θ) extends to the whole
//! compilation — a new θ for a known structure should open its duration binary
//! search at the structural neighbor's converged window and start every GRAPE
//! probe from the neighbor's converged amplitudes, not from the seeded sinusoid.
//!
//! The shape of the index is borrowed from game-tree search transposition
//! tables: a fixed-capacity, sharded array of slots, probed by hashing the
//! structural key straight to one slot — no chaining, no rehashing, no
//! allocation on a hit. Two keys that land on the same slot *replace* rather
//! than chain, and replacement is depth-preferred: a slot never gives up a
//! converged entry for an unconverged probe, nor a deeper entry (more invested
//! GRAPE iterations) for a shallower one. Same-key records merge instead:
//! the converged duration only tightens downward, the non-converging lower
//! bound only tightens upward, and the best-so-far pulse follows the shortest
//! converged duration.
//!
//! Because the table caches whole waveforms, capacity is bounded two ways: an
//! entry-count bound (`VQC_TT_CAPACITY` slots) and an optional byte budget
//! (`VQC_CACHE_BYTES`) accounting waveform payload sizes, enforced per shard
//! with the same depth-preferred ordering (the shallowest entries leave first).
//! `VQC_TT=0` disables the table entirely, pinning cold-path behavior.
//!
//! The table is generic over the key so this crate stays independent of
//! `vqc-core`'s `BlockKey`; `vqc-core` instantiates it with the structural
//! block key, and `vqc-runtime` persists its entries in snapshot v3.

use crate::minimum_time::SearchSeed;
use crate::PulseSequence;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default total slot capacity across all shards.
pub const DEFAULT_TT_CAPACITY: usize = 4096;

/// Cap on the per-duration iteration history an entry carries. The history is
/// diagnostic (it is what "depth" is measured from); the oldest records age out
/// first so a hot structure cannot grow its entry without bound.
const MAX_PROBE_HISTORY: usize = 32;

/// Configuration of a [`TranspositionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableConfig {
    /// Whether the table is armed at all. A disabled table never hits and never
    /// stores, so every search runs exactly the cold path (`VQC_TT=0`).
    pub enabled: bool,
    /// Total slot count across all shards (`VQC_TT_CAPACITY`).
    pub capacity: usize,
    /// Number of independent shards (rounded up to a power of two, minimum 1).
    pub shards: usize,
    /// Optional byte budget over stored waveform payloads (`VQC_CACHE_BYTES`),
    /// split evenly across shards and enforced alongside the slot bound.
    pub max_bytes: Option<usize>,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            enabled: true,
            capacity: DEFAULT_TT_CAPACITY,
            shards: 16,
            max_bytes: None,
        }
    }
}

impl TableConfig {
    /// The built-in defaults overridden by the environment: `VQC_TT` (`0`,
    /// `off`, `false`, `no` disable the table), `VQC_TT_CAPACITY` (total slot
    /// count), and `VQC_CACHE_BYTES` (waveform byte budget).
    pub fn from_env() -> Self {
        let mut config = TableConfig::default();
        if let Ok(value) = std::env::var("VQC_TT") {
            if matches!(
                value.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false" | "no"
            ) {
                config.enabled = false;
            }
        }
        if let Ok(value) = std::env::var("VQC_TT_CAPACITY") {
            if let Ok(capacity) = value.trim().parse::<usize>() {
                config.capacity = capacity.max(1);
            }
        }
        if let Ok(value) = std::env::var("VQC_CACHE_BYTES") {
            if let Ok(bytes) = value.trim().parse::<usize>() {
                config.max_bytes = Some(bytes);
            }
        }
        config
    }

    /// A configuration with the table switched off (the cold path).
    pub fn disabled() -> Self {
        TableConfig {
            enabled: false,
            ..TableConfig::default()
        }
    }
}

/// What one structural key has learned across every compilation of its
/// structure: tuned hyperparameters, the converged duration window, the
/// per-duration iteration history, and the best-so-far converged amplitudes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeedEntry {
    /// Best known ADAM learning rate for this structure.
    pub learning_rate: f64,
    /// Best known learning-rate decay for this structure.
    pub decay_rate: f64,
    /// Whether the hyperparameters came from a real tuning grid (as opposed to
    /// the compiled-in defaults a strict-partial compilation ran with).
    pub tuned: bool,
    /// Shortest duration (ns) at which any binding of this structure converged.
    pub converged_duration_ns: Option<f64>,
    /// Tightest duration (ns) below which some binding failed to converge — the
    /// seeded search's lower bound.
    pub failed_below_ns: f64,
    /// `(duration_ns, iterations)` per probe, most recent last, capped; the sum
    /// of iteration counts is the entry's replacement depth.
    pub probe_iterations: Vec<(f64, usize)>,
    /// Converged amplitudes at `converged_duration_ns`, resampled by
    /// [`PulseSequence::resampled`] onto whatever grid the seeded probe needs.
    pub pulse: Option<PulseSequence>,
}

impl SeedEntry {
    /// Whether any binding of this structure has converged.
    pub fn converged(&self) -> bool {
        self.converged_duration_ns.is_some()
    }

    /// Total GRAPE iterations invested in this entry — the replacement "depth":
    /// an entry backed by more search work is never displaced by one backed by
    /// less.
    pub fn depth(&self) -> u64 {
        self.probe_iterations
            .iter()
            .map(|(_, iterations)| *iterations as u64)
            .sum()
    }

    /// Approximate heap footprint in bytes, dominated by the waveform payload.
    pub fn approx_bytes(&self) -> usize {
        let waveforms = self
            .pulse
            .as_ref()
            .map(|p| p.num_controls() * (p.num_slices() + 3) * std::mem::size_of::<f64>())
            .unwrap_or(0);
        std::mem::size_of::<SeedEntry>()
            + waveforms
            + self.probe_iterations.capacity() * std::mem::size_of::<(f64, usize)>()
    }

    /// Appends one probe outcome to the iteration history, aging out the oldest
    /// records past the history cap.
    pub fn record_probe(&mut self, duration_ns: f64, iterations: usize) {
        self.probe_iterations.push((duration_ns, iterations));
        if self.probe_iterations.len() > MAX_PROBE_HISTORY {
            let excess = self.probe_iterations.len() - MAX_PROBE_HISTORY;
            self.probe_iterations.drain(..excess);
        }
    }

    /// The warm-start seed a duration search opens from: the entry's converged
    /// window plus its best pulse.
    pub fn search_seed(&self) -> SearchSeed {
        SearchSeed {
            lower_bound_ns: self.failed_below_ns,
            converged_duration_ns: self.converged_duration_ns,
            pulse: self.pulse.clone(),
        }
    }

    /// Replacement rank: converged beats unconverged, then deeper beats
    /// shallower.
    fn rank(&self) -> (bool, u64) {
        (self.converged(), self.depth())
    }

    /// Merges a fresh record for the *same* key into this entry: the window
    /// only tightens (minimum converged duration, maximum failed lower bound),
    /// the pulse follows the shortest converged duration, tuned hyperparameters
    /// are preferred over defaults, and probe histories concatenate.
    fn merge_from(&mut self, other: SeedEntry) {
        if other.tuned || !self.tuned {
            self.learning_rate = other.learning_rate;
            self.decay_rate = other.decay_rate;
        }
        self.tuned |= other.tuned;
        self.failed_below_ns = self.failed_below_ns.max(other.failed_below_ns);
        let improves = match (self.converged_duration_ns, other.converged_duration_ns) {
            (Some(mine), Some(theirs)) => theirs < mine,
            (None, Some(_)) => true,
            _ => false,
        };
        if improves {
            self.converged_duration_ns = other.converged_duration_ns;
            if other.pulse.is_some() {
                self.pulse = other.pulse;
            }
        } else if self.pulse.is_none() {
            self.pulse = other.pulse;
        }
        for (duration_ns, iterations) in other.probe_iterations {
            self.record_probe(duration_ns, iterations);
        }
    }
}

/// Point-in-time warm-start effectiveness counters: table and [`EigenMemo`]
/// traffic plus seeded-vs-cold GRAPE iteration totals.
///
/// [`EigenMemo`]: crate::EigenMemo
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmStartStats {
    /// Table probes answered from a stored entry.
    pub table_hits: u64,
    /// Table probes that found nothing (or hit a colliding key).
    pub table_misses: u64,
    /// Records refused by depth-preferred replacement or the byte budget.
    pub table_rejected: u64,
    /// Entries displaced by a deeper record or the byte budget.
    pub table_evictions: u64,
    /// Eigendecomposition memo hits across compilations.
    pub memo_hits: u64,
    /// Eigendecomposition memo misses across compilations.
    pub memo_misses: u64,
    /// Memo inserts rejected at capacity.
    pub memo_rejected: u64,
    /// Total GRAPE iterations spent by table-seeded searches.
    pub seeded_iterations: u64,
    /// Total GRAPE iterations spent by cold searches.
    pub cold_iterations: u64,
}

/// One occupied slot: the hash doubles as a cheap pre-filter so a probe only
/// compares full keys when the 64-bit hashes already agree.
#[derive(Debug)]
struct OccupiedSlot<K> {
    hash: u64,
    key: K,
    entry: SeedEntry,
    bytes: usize,
}

#[derive(Debug)]
struct ShardState<K> {
    /// Fixed slot array, allocated lazily on the shard's first record so an
    /// unused (or disabled) table costs nothing.
    slots: Vec<Option<OccupiedSlot<K>>>,
    /// Approximate bytes held by this shard's entries.
    bytes: usize,
}

#[derive(Debug, Default)]
struct TableCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    evictions: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    memo_rejected: AtomicU64,
    seeded_iterations: AtomicU64,
    cold_iterations: AtomicU64,
}

/// A fixed-capacity, sharded, cheaply-probed replacement table mapping a
/// structural key to the [`SeedEntry`] its past compilations accumulated.
///
/// Probes hash the key straight to one slot — O(1), allocation-free on a hit
/// via [`TranspositionTable::probe_with`] — and records either merge (same
/// key), replace depth-preferred (colliding key), or fill an empty slot.
#[derive(Debug)]
pub struct TranspositionTable<K> {
    shards: Vec<Mutex<ShardState<K>>>,
    /// `shards.len() - 1`; the shard count is a power of two so this masks a hash.
    mask: usize,
    slots_per_shard: usize,
    /// Per-shard byte budget, if `max_bytes` is configured.
    shard_budget: Option<usize>,
    config: TableConfig,
    counters: TableCounters,
}

impl<K> Default for TranspositionTable<K> {
    /// An environment-configured table ([`TableConfig::from_env`]), so every
    /// embedding cache honors `VQC_TT` / `VQC_TT_CAPACITY` / `VQC_CACHE_BYTES`
    /// without plumbing.
    fn default() -> Self {
        TranspositionTable::new(TableConfig::from_env())
    }
}

impl<K> TranspositionTable<K> {
    /// Creates an empty table with the given configuration.
    pub fn new(config: TableConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        let slots_per_shard = config.capacity.max(1).div_ceil(shards).max(1);
        TranspositionTable {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ShardState {
                        slots: Vec::new(),
                        bytes: 0,
                    })
                })
                .collect(),
            mask: shards - 1,
            slots_per_shard,
            shard_budget: config.max_bytes.map(|total| (total / shards).max(1)),
            config,
            counters: TableCounters::default(),
        }
    }

    /// The configuration the table was built with.
    pub fn config(&self) -> TableConfig {
        self.config
    }

    /// Whether probes and records are armed at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Total slot capacity (shards × slots per shard).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.slots_per_shard
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .slots
                    .iter()
                    .filter(|slot| slot.is_some())
                    .count()
            })
            .sum()
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes held by all entries.
    pub fn approx_bytes(&self) -> usize {
        self.shards.iter().map(|shard| shard.lock().bytes).sum()
    }

    /// Drops every entry (counters are kept — clearing stored results does not
    /// un-happen the traffic they served).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut state = shard.lock();
            state.slots.clear();
            state.bytes = 0;
        }
    }

    /// Adds seeded-or-cold GRAPE iteration totals from one finished search.
    pub fn record_search_outcome(&self, seeded: bool, grape_iterations: u64) {
        if seeded {
            self.counters
                .seeded_iterations
                .fetch_add(grape_iterations, Ordering::Relaxed);
        } else {
            self.counters
                .cold_iterations
                .fetch_add(grape_iterations, Ordering::Relaxed);
        }
    }

    /// Adds one compilation's [`EigenMemo`](crate::EigenMemo) counter deltas.
    pub fn record_memo_outcome(&self, hits: u64, misses: u64, rejected: u64) {
        self.counters.memo_hits.fetch_add(hits, Ordering::Relaxed);
        self.counters
            .memo_misses
            .fetch_add(misses, Ordering::Relaxed);
        self.counters
            .memo_rejected
            .fetch_add(rejected, Ordering::Relaxed);
    }

    /// Current warm-start counters.
    pub fn stats(&self) -> WarmStartStats {
        WarmStartStats {
            table_hits: self.counters.hits.load(Ordering::Relaxed),
            table_misses: self.counters.misses.load(Ordering::Relaxed),
            table_rejected: self.counters.rejected.load(Ordering::Relaxed),
            table_evictions: self.counters.evictions.load(Ordering::Relaxed),
            memo_hits: self.counters.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.counters.memo_misses.load(Ordering::Relaxed),
            memo_rejected: self.counters.memo_rejected.load(Ordering::Relaxed),
            seeded_iterations: self.counters.seeded_iterations.load(Ordering::Relaxed),
            cold_iterations: self.counters.cold_iterations.load(Ordering::Relaxed),
        }
    }

    fn hash_key(key: &K) -> u64
    where
        K: Hash,
    {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        hasher.finish()
    }

    fn shard_index(&self, hash: u64) -> usize {
        (hash as usize) & self.mask
    }

    /// Slot index within a shard, taken from the hash bits the shard selector
    /// did not consume.
    fn slot_index(&self, hash: u64) -> usize {
        ((hash >> 32) as usize) % self.slots_per_shard
    }
}

impl<K: Hash + Eq> TranspositionTable<K> {
    /// Probes the slot for `key` and, on a hit, hands the stored entry to
    /// `read` by reference — no clone, no allocation — returning its result.
    /// Returns `None` on a miss (empty slot, colliding key, or disabled table).
    pub fn probe_with<R>(&self, key: &K, read: impl FnOnce(&SeedEntry) -> R) -> Option<R> {
        if !self.config.enabled {
            return None;
        }
        let hash = Self::hash_key(key);
        let state = self.shards[self.shard_index(hash)].lock();
        let slot_index = self.slot_index(hash);
        match state.slots.get(slot_index).and_then(Option::as_ref) {
            Some(slot) if slot.hash == hash && slot.key == *key => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(read(&slot.entry))
            }
            _ => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Probes the slot for `key`, cloning the stored entry on a hit.
    pub fn probe(&self, key: &K) -> Option<SeedEntry> {
        self.probe_with(key, SeedEntry::clone)
    }

    /// Records what one compilation learned about `key`. Same-key records merge
    /// ([`SeedEntry`] windows only tighten); a colliding key replaces the
    /// occupant only when it is at least as converged and as deep (an entry is
    /// never evicted for a shallower one); the byte budget then evicts the
    /// shallowest entries until the shard fits.
    pub fn record(&self, key: &K, entry: SeedEntry)
    where
        K: Clone,
    {
        if !self.config.enabled {
            return;
        }
        let bytes = entry.approx_bytes();
        if let Some(budget) = self.shard_budget {
            // An entry that alone busts the shard budget can never be retained;
            // rejecting it up front avoids evicting others for nothing.
            if bytes > budget {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let hash = Self::hash_key(key);
        let slot_index = self.slot_index(hash);
        let mut state = self.shards[self.shard_index(hash)].lock();
        if state.slots.is_empty() {
            let slots = self.slots_per_shard;
            state.slots.resize_with(slots, || None);
        }
        let ShardState { slots, bytes: held } = &mut *state;
        match &mut slots[slot_index] {
            Some(slot) if slot.hash == hash && slot.key == *key => {
                slot.entry.merge_from(entry);
                let merged = slot.entry.approx_bytes();
                *held = *held + merged - slot.bytes;
                slot.bytes = merged;
            }
            Some(slot) => {
                if entry.rank() >= slot.entry.rank() {
                    *held = *held + bytes - slot.bytes;
                    *slot = OccupiedSlot {
                        hash,
                        key: key.clone(),
                        entry,
                        bytes,
                    };
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
            empty => {
                *held += bytes;
                *empty = Some(OccupiedSlot {
                    hash,
                    key: key.clone(),
                    entry,
                    bytes,
                });
            }
        }
        self.enforce_byte_budget(&mut state);
    }

    /// Evicts the shallowest entries until the shard's bytes fit the budget.
    /// The just-inserted entry is a legitimate victim when it is the
    /// shallowest — depth preference holds even against fresh arrivals.
    fn enforce_byte_budget(&self, state: &mut ShardState<K>) {
        let Some(budget) = self.shard_budget else {
            return;
        };
        while state.bytes > budget {
            let victim = state
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| slot.as_ref().map(|s| (s.entry.rank(), i)))
                .min()
                .map(|(_, i)| i);
            match victim {
                Some(index) => {
                    if let Some(slot) = state.slots[index].take() {
                        state.bytes -= slot.bytes;
                    }
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    state.bytes = 0;
                    break;
                }
            }
        }
    }
}

impl<K: Hash + Eq + Clone> TranspositionTable<K> {
    /// Copies every occupied slot out, for snapshot persistence.
    pub fn entries(&self) -> Vec<(K, SeedEntry)> {
        self.shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .slots
                    .iter()
                    .filter_map(|slot| {
                        slot.as_ref()
                            .map(|slot| (slot.key.clone(), slot.entry.clone()))
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Replays persisted entries through [`TranspositionTable::record`], so
    /// capacity bounds and replacement policy apply to restored state too.
    pub fn absorb(&self, entries: impl IntoIterator<Item = (K, SeedEntry)>) {
        for (key, entry) in entries {
            self.record(&key, entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn converged_entry(duration_ns: f64, iterations: usize) -> SeedEntry {
        let mut entry = SeedEntry {
            learning_rate: 0.1,
            decay_rate: 0.999,
            converged_duration_ns: Some(duration_ns),
            failed_below_ns: duration_ns * 0.5,
            pulse: Some(PulseSequence::zeros(2, 8, 0.5)),
            ..SeedEntry::default()
        };
        entry.record_probe(duration_ns, iterations);
        entry
    }

    fn unconverged_entry(iterations: usize) -> SeedEntry {
        let mut entry = SeedEntry {
            failed_below_ns: 5.0,
            ..SeedEntry::default()
        };
        entry.record_probe(5.0, iterations);
        entry
    }

    fn tiny_table(max_bytes: Option<usize>) -> TranspositionTable<u64> {
        TranspositionTable::new(TableConfig {
            enabled: true,
            capacity: 1,
            shards: 1,
            max_bytes,
        })
    }

    #[test]
    fn probe_miss_then_record_then_hit() {
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig::default());
        assert!(table.probe(&7).is_none());
        table.record(&7, converged_entry(3.0, 40));
        let entry = table.probe(&7).expect("recorded entry must hit");
        assert_eq!(entry.converged_duration_ns, Some(3.0));
        assert_eq!(entry.depth(), 40);
        let stats = table.stats();
        assert_eq!((stats.table_hits, stats.table_misses), (1, 1));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn same_key_records_merge_and_only_tighten_the_window() {
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig::default());
        table.record(&1, converged_entry(4.0, 10));
        // A later, worse outcome must not widen the window...
        let mut worse = converged_entry(6.0, 5);
        worse.failed_below_ns = 1.0;
        table.record(&1, worse);
        let entry = table.probe(&1).unwrap();
        assert_eq!(entry.converged_duration_ns, Some(4.0));
        assert_eq!(entry.failed_below_ns, 2.0);
        assert_eq!(entry.depth(), 15, "probe histories concatenate");
        // ...while a better one tightens both ends and brings its pulse along.
        let mut better = converged_entry(2.5, 20);
        better.failed_below_ns = 2.2;
        better.pulse = Some(PulseSequence::zeros(2, 4, 0.5));
        table.record(&1, better);
        let entry = table.probe(&1).unwrap();
        assert_eq!(entry.converged_duration_ns, Some(2.5));
        assert_eq!(entry.failed_below_ns, 2.2);
        assert_eq!(entry.pulse.as_ref().map(PulseSequence::num_slices), Some(4));
    }

    #[test]
    fn tuned_hyperparameters_are_preferred_over_defaults() {
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig::default());
        let mut tuned = converged_entry(3.0, 10);
        tuned.tuned = true;
        tuned.learning_rate = 0.3;
        table.record(&1, tuned);
        // An untuned follow-up must not clobber the tuned configuration.
        table.record(&1, converged_entry(3.5, 5));
        let entry = table.probe(&1).unwrap();
        assert!(entry.tuned);
        assert_eq!(entry.learning_rate, 0.3);
    }

    #[test]
    fn replacement_is_depth_preferred() {
        // Capacity 1 in one shard: every key maps to the same slot.
        let table = tiny_table(None);
        table.record(&1, converged_entry(3.0, 50));
        // An unconverged probe never displaces a converged entry.
        table.record(&2, unconverged_entry(500));
        assert!(table.probe(&1).is_some(), "converged entry must survive");
        assert!(table.probe(&2).is_none());
        // A shallower converged entry does not displace a deeper one either.
        table.record(&3, converged_entry(2.0, 10));
        assert!(table.probe(&1).is_some(), "deeper entry must survive");
        // A deeper converged entry does.
        table.record(&4, converged_entry(2.0, 90));
        assert!(table.probe(&4).is_some());
        assert!(table.probe(&1).is_none());
        let stats = table.stats();
        assert_eq!(stats.table_rejected, 2);
        assert_eq!(stats.table_evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_shallowest_entries_first() {
        let entry_bytes = converged_entry(3.0, 10).approx_bytes();
        // Room for two entries, spread over enough slots that keys don't collide.
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig {
            enabled: true,
            capacity: 64,
            shards: 1,
            max_bytes: Some(2 * entry_bytes + entry_bytes / 2),
        });
        table.record(&1, converged_entry(3.0, 100));
        table.record(&2, converged_entry(3.0, 50));
        table.record(&3, converged_entry(3.0, 10));
        assert!(table.approx_bytes() <= 2 * entry_bytes + entry_bytes / 2);
        assert_eq!(table.len(), 2);
        assert!(table.probe(&1).is_some(), "deepest entry survives");
        assert!(table.probe(&3).is_none(), "shallowest entry is the victim");
        assert!(table.stats().table_evictions >= 1);
    }

    #[test]
    fn oversized_entry_is_rejected_outright() {
        let table = tiny_table(Some(64));
        table.record(&1, converged_entry(3.0, 10));
        assert!(table.probe(&1).is_none());
        assert_eq!(table.stats().table_rejected, 1);
        assert_eq!(table.approx_bytes(), 0);
    }

    #[test]
    fn disabled_table_never_stores_or_hits() {
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig::disabled());
        table.record(&1, converged_entry(3.0, 10));
        assert!(table.probe(&1).is_none());
        assert!(table.is_empty());
        let stats = table.stats();
        assert_eq!((stats.table_hits, stats.table_misses), (0, 0));
    }

    #[test]
    fn entries_round_trip_through_absorb() {
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig::default());
        table.record(&1, converged_entry(3.0, 10));
        table.record(&2, unconverged_entry(5));
        let mut entries = table.entries();
        entries.sort_by_key(|(k, _)| *k);
        assert_eq!(entries.len(), 2);

        let restored: TranspositionTable<u64> = TranspositionTable::new(TableConfig::default());
        restored.absorb(entries.clone());
        let mut replayed = restored.entries();
        replayed.sort_by_key(|(k, _)| *k);
        assert_eq!(replayed, entries);
    }

    #[test]
    fn search_and_memo_outcomes_aggregate() {
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig::default());
        table.record_search_outcome(true, 40);
        table.record_search_outcome(false, 100);
        table.record_search_outcome(true, 10);
        table.record_memo_outcome(7, 3, 1);
        let stats = table.stats();
        assert_eq!(stats.seeded_iterations, 50);
        assert_eq!(stats.cold_iterations, 100);
        assert_eq!(
            (stats.memo_hits, stats.memo_misses, stats.memo_rejected),
            (7, 3, 1)
        );
    }

    #[test]
    fn probe_history_is_capped() {
        let mut entry = SeedEntry::default();
        for i in 0..(MAX_PROBE_HISTORY + 10) {
            entry.record_probe(i as f64, 1);
        }
        assert_eq!(entry.probe_iterations.len(), MAX_PROBE_HISTORY);
        // The oldest records aged out.
        assert_eq!(entry.probe_iterations[0].0, 10.0);
    }
}
