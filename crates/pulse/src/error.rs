//! Error type for the pulse-optimization layer.

use std::error::Error;
use std::fmt;

/// Errors produced by pulse construction and optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum PulseError {
    /// The target unitary's dimension does not match the device's qubit subspace.
    DimensionMismatch {
        /// Dimension of the supplied target matrix.
        target_dim: usize,
        /// Dimension of the device's computational subspace.
        device_dim: usize,
    },
    /// The requested pulse duration does not contain a single full sample period.
    DurationTooShort {
        /// Requested duration in nanoseconds.
        duration_ns: f64,
        /// Sample period in nanoseconds.
        dt_ns: f64,
    },
    /// GRAPE failed to reach the target infidelity within the iteration budget.
    DidNotConverge {
        /// Infidelity reached when the budget was exhausted.
        achieved_infidelity: f64,
        /// Infidelity that was requested.
        target_infidelity: f64,
    },
}

impl fmt::Display for PulseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PulseError::DimensionMismatch { target_dim, device_dim } => write!(
                f,
                "target unitary dimension {target_dim} does not match device qubit dimension {device_dim}"
            ),
            PulseError::DurationTooShort { duration_ns, dt_ns } => write!(
                f,
                "pulse duration {duration_ns} ns is shorter than one sample period ({dt_ns} ns)"
            ),
            PulseError::DidNotConverge {
                achieved_infidelity,
                target_infidelity,
            } => write!(
                f,
                "GRAPE did not converge: reached infidelity {achieved_infidelity:.3e}, wanted {target_infidelity:.3e}"
            ),
        }
    }
}

impl Error for PulseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PulseError::DimensionMismatch {
            target_dim: 4,
            device_dim: 8,
        };
        assert!(e.to_string().contains("4"));
        let e = PulseError::DurationTooShort {
            duration_ns: 0.1,
            dt_ns: 0.5,
        };
        assert!(e.to_string().contains("sample period"));
        let e = PulseError::DidNotConverge {
            achieved_infidelity: 0.1,
            target_infidelity: 0.001,
        };
        assert!(e.to_string().contains("converge"));
    }
}
