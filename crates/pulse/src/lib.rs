//! GRAPE (GRadient Ascent Pulse Engineering) quantum optimal control.
//!
//! This crate implements the pulse-level compilation backend of the paper:
//!
//! * [`DeviceModel`] — the gmon superconducting system Hamiltonian of Appendix A:
//!   a charge drive (`a† + a`, realizing X rotations, max amplitude 2π·0.1 GHz), a flux
//!   drive (`a† a`, realizing Z rotations, max 2π·1.5 GHz) per qubit, and an
//!   `(a†+a)(a†+a)` coupling (max 2π·0.05 GHz) per connected pair. The 15x asymmetry
//!   between flux and charge drives is the "control field asymmetry" speedup source of
//!   Section 5.1.
//! * [`PulseSequence`] — piecewise-constant control amplitudes, one waveform per
//!   control knob, with a configurable sample period.
//! * [`propagate`] — time-ordered propagation `U = Π exp(-i Δt H(t))` and the
//!   forward/backward partial products needed for analytic gradients.
//! * [`grape`] — the gradient-descent loop (ADAM with learning-rate decay), the cost
//!   terms (infidelity, amplitude, smoothness regularization), and convergence control.
//! * [`workspace`] — the reusable [`GrapeWorkspace`]: every buffer one GRAPE run
//!   needs, allocated once per optimization so the iteration kernel never touches
//!   the heap.
//! * [`memo`] — the [`EigenMemo`] cache of slice-Hamiltonian eigendecompositions,
//!   shared across the duration search's probes and hyperparameter re-tuning.
//! * [`profile`] — phase-scoped compile-time accounting: a [`CompileProfile`]
//!   attributing each block's wall time to Hamiltonian assembly, eigensolves
//!   (with Jacobi sweep counts), propagation, gradient contraction, memo/table
//!   probes, duration probes, and hyperparameter tuning. Disarmed it costs a
//!   single branch per instrumentation point; armed (`VQC_PROFILE=1`) it stays
//!   allocation-free.
//! * [`minimum_time`] — the binary search for the shortest pulse duration that still
//!   reaches the target fidelity (Section 5.3), warm-starting each probe from the
//!   nearest converged one — or, when a [`TranspositionTable`] entry exists for the
//!   block's structure, opening directly at the structural neighbor's converged
//!   window with the neighbor's pulse as the initial guess.
//! * [`transposition`] — the fixed-capacity, sharded warm-start index mapping a
//!   structural key to tuned hyperparameters, a converged duration window, and the
//!   best-so-far amplitudes, with depth-preferred replacement.
//! * [`realistic`] — the "more realistic" settings of Section 8.3: 1 GSa/s waveforms,
//!   qutrit leakage levels, and aggressive pulse regularization.
//!
//! # Example: finding a π rotation pulse
//!
//! ```
//! use vqc_pulse::{DeviceModel, grape::{GrapeOptions, optimize_pulse}};
//! use vqc_sim::gates;
//!
//! let device = DeviceModel::qubits_line(1);
//! let target = gates::rx(std::f64::consts::PI);
//! let options = GrapeOptions::fast();
//! let result = optimize_pulse(&target, &device, 3.0, &options);
//! // 3 ns is enough for an Rx(π) on this device (Table 1 lists 2.5 ns).
//! assert!(result.infidelity < 5e-2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod error;
pub mod grape;
pub mod memo;
pub mod minimum_time;
pub mod profile;
pub mod propagate;
mod pulse;
pub mod realistic;
pub mod transposition;
pub mod workspace;

pub use device::{ControlHamiltonian, DeviceModel};
pub use error::PulseError;
pub use memo::EigenMemo;
pub use minimum_time::SearchSeed;
pub use profile::{CompileProfile, Phase, PHASE_COUNT};
pub use pulse::PulseSequence;
pub use transposition::{SeedEntry, TableConfig, TranspositionTable, WarmStartStats};
pub use workspace::{GrapeWorkspace, KernelPolicy};
