//! The gmon system Hamiltonian of Appendix A.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;
use vqc_circuit::Topology;
use vqc_linalg::{Matrix, C64};

/// Maximum charge-drive amplitude `|Ω_c| ≤ 2π · 0.1 GHz`, in rad/ns.
pub const CHARGE_DRIVE_MAX: f64 = 2.0 * PI * 0.1;
/// Maximum flux-drive amplitude `|Ω_f| ≤ 2π · 1.5 GHz`, in rad/ns.
pub const FLUX_DRIVE_MAX: f64 = 2.0 * PI * 1.5;
/// Maximum coupling strength `|g| ≤ 2π · 0.05 GHz`, in rad/ns.
pub const COUPLING_MAX: f64 = 2.0 * PI * 0.05;

/// One control knob of the device: a Hamiltonian term whose amplitude GRAPE shapes over
/// time, together with the hardware limit on that amplitude.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlHamiltonian {
    /// Human-readable label, e.g. `"charge[2]"` or `"coupling[0-1]"`.
    pub label: String,
    /// The Hamiltonian term in the full device Hilbert space, in units of rad/ns per
    /// unit amplitude.
    pub operator: Matrix,
    /// Hardware bound on the control amplitude, in rad/ns.
    pub max_amplitude: f64,
}

/// The number of levels simulated per transmon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransmonLevels {
    /// Binary qubit approximation (the paper's standard setting).
    Qubit,
    /// Three-level transmon, exposing leakage into the `|2⟩` state (the "more
    /// realistic" setting of Section 8.3).
    Qutrit,
}

impl TransmonLevels {
    /// Hilbert-space dimension per transmon.
    pub fn dim(self) -> usize {
        match self {
            TransmonLevels::Qubit => 2,
            TransmonLevels::Qutrit => 3,
        }
    }
}

/// A model of the gmon device GRAPE compiles against: a set of transmons on a
/// connectivity graph, with charge/flux drives per transmon and a tunable coupler per
/// edge.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    num_qubits: usize,
    levels: TransmonLevels,
    topology: Topology,
}

impl DeviceModel {
    /// A device with the given connectivity, in the binary-qubit approximation.
    pub fn new(topology: Topology) -> Self {
        DeviceModel {
            num_qubits: topology.num_qubits(),
            levels: TransmonLevels::Qubit,
            topology,
        }
    }

    /// A line (chain) of `n` qubits — the connectivity every ≤4-qubit GRAPE block uses.
    pub fn qubits_line(n: usize) -> Self {
        DeviceModel::new(Topology::line(n))
    }

    /// A rectangular grid of qubits with nearest-neighbour connectivity (Appendix A).
    pub fn qubits_grid(rows: usize, cols: usize) -> Self {
        DeviceModel::new(Topology::grid(rows, cols))
    }

    /// Switches the model to three-level transmons, exposing leakage.
    pub fn with_qutrit_levels(mut self) -> Self {
        self.levels = TransmonLevels::Qutrit;
        self
    }

    /// Number of transmons.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The per-transmon level structure.
    pub fn levels(&self) -> TransmonLevels {
        self.levels
    }

    /// The device connectivity.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total Hilbert-space dimension `levels^n`.
    pub fn dim(&self) -> usize {
        self.levels.dim().pow(self.num_qubits as u32)
    }

    /// Dimension of the computational (qubit) subspace, `2^n`.
    pub fn qubit_dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// The annihilation operator `a` for a single transmon.
    fn annihilation(&self) -> Matrix {
        let d = self.levels.dim();
        let mut a = Matrix::zeros(d, d);
        for k in 1..d {
            a[(k - 1, k)] = C64::from_real((k as f64).sqrt());
        }
        a
    }

    /// `a† + a` for a single transmon (charge-drive quadrature).
    fn x_like(&self) -> Matrix {
        let a = self.annihilation();
        &a + &a.dagger()
    }

    /// `a† a` for a single transmon (number operator, flux-drive quadrature).
    fn n_like(&self) -> Matrix {
        let a = self.annihilation();
        a.dagger().matmul(&a)
    }

    /// Embeds a single-transmon operator on transmon `q` into the full Hilbert space.
    fn embed_single(&self, op: &Matrix, q: usize) -> Matrix {
        let d = self.levels.dim();
        let mut full = Matrix::identity(1);
        for i in 0..self.num_qubits {
            let factor = if i == q {
                op.clone()
            } else {
                Matrix::identity(d)
            };
            full = full.kron(&factor);
        }
        full
    }

    /// Embeds the product of two single-transmon operators on transmons `q1` and `q2`.
    fn embed_pair(&self, op1: &Matrix, q1: usize, op2: &Matrix, q2: usize) -> Matrix {
        let d = self.levels.dim();
        let mut full = Matrix::identity(1);
        for i in 0..self.num_qubits {
            let factor = if i == q1 {
                op1.clone()
            } else if i == q2 {
                op2.clone()
            } else {
                Matrix::identity(d)
            };
            full = full.kron(&factor);
        }
        full
    }

    /// The drift Hamiltonian. In the rotating frame of Appendix A the drift vanishes;
    /// it is kept as an explicit (zero) term so alternative device models can override
    /// it without changing the propagation code.
    pub fn drift(&self) -> Matrix {
        Matrix::zeros(self.dim(), self.dim())
    }

    /// All control Hamiltonians of the device, in a fixed order:
    /// charge drives (one per transmon), then flux drives, then couplings (one per
    /// topology edge).
    pub fn control_hamiltonians(&self) -> Vec<ControlHamiltonian> {
        let mut controls = Vec::new();
        let x_like = self.x_like();
        let n_like = self.n_like();
        for q in 0..self.num_qubits {
            controls.push(ControlHamiltonian {
                label: format!("charge[{q}]"),
                operator: self.embed_single(&x_like, q),
                max_amplitude: CHARGE_DRIVE_MAX,
            });
        }
        for q in 0..self.num_qubits {
            controls.push(ControlHamiltonian {
                label: format!("flux[{q}]"),
                operator: self.embed_single(&n_like, q),
                max_amplitude: FLUX_DRIVE_MAX,
            });
        }
        for (a, b) in self.topology.edges() {
            controls.push(ControlHamiltonian {
                label: format!("coupling[{a}-{b}]"),
                operator: self.embed_pair(&x_like, a, &x_like, b),
                max_amplitude: COUPLING_MAX,
            });
        }
        controls
    }

    /// Number of control knobs.
    pub fn num_controls(&self) -> usize {
        2 * self.num_qubits + self.topology.num_edges()
    }

    /// Indices (into the full Hilbert space) of the basis states that lie inside the
    /// computational qubit subspace, in qubit-basis order.
    ///
    /// In the binary-qubit approximation this is simply `0..2^n`; for qutrits it selects
    /// the states where every transmon is in `|0⟩` or `|1⟩`.
    pub fn qubit_subspace_indices(&self) -> Vec<usize> {
        let d = self.levels.dim();
        let mut indices = Vec::with_capacity(self.qubit_dim());
        for q_index in 0..self.qubit_dim() {
            // Interpret q_index as bits (qubit 0 most significant) and map to the
            // base-`d` index of the same occupation pattern.
            let mut full_index = 0usize;
            for bit in 0..self.num_qubits {
                let occupation = (q_index >> (self.num_qubits - 1 - bit)) & 1;
                full_index = full_index * d + occupation;
            }
            indices.push(full_index);
        }
        indices
    }

    /// Embeds a `2^n x 2^n` qubit-space unitary into the device Hilbert space, acting as
    /// the identity on all leakage levels.
    pub fn embed_qubit_unitary(&self, target: &Matrix) -> Matrix {
        assert_eq!(
            target.shape(),
            (self.qubit_dim(), self.qubit_dim()),
            "target must be a {0} x {0} qubit-space unitary",
            self.qubit_dim()
        );
        if self.levels == TransmonLevels::Qubit {
            return target.clone();
        }
        let indices = self.qubit_subspace_indices();
        let mut full = Matrix::identity(self.dim());
        for (r_sub, &r_full) in indices.iter().enumerate() {
            for (c_sub, &c_full) in indices.iter().enumerate() {
                full[(r_full, c_full)] = target[(r_sub, c_sub)];
            }
        }
        full
    }

    /// Embeds a `2^n x 2^n` qubit-space unitary into the device Hilbert space with
    /// *zeros* on all leakage levels.
    ///
    /// This is the form the GRAPE cost function wants: with a zero-padded target `Ṽ`,
    /// `Tr(Ṽ† U)` only picks up the action of `U` inside the computational subspace, so
    /// any population that leaks into higher levels shows up as lost fidelity.
    pub fn pad_qubit_unitary(&self, target: &Matrix) -> Matrix {
        assert_eq!(
            target.shape(),
            (self.qubit_dim(), self.qubit_dim()),
            "target must be a {0} x {0} qubit-space unitary",
            self.qubit_dim()
        );
        if self.levels == TransmonLevels::Qubit {
            return target.clone();
        }
        let indices = self.qubit_subspace_indices();
        let mut full = Matrix::zeros(self.dim(), self.dim());
        for (r_sub, &r_full) in indices.iter().enumerate() {
            for (c_sub, &c_full) in indices.iter().enumerate() {
                full[(r_full, c_full)] = target[(r_sub, c_sub)];
            }
        }
        full
    }

    /// Restricts a device-space operator to the computational qubit subspace.
    pub fn project_to_qubit_subspace(&self, full: &Matrix) -> Matrix {
        let indices = self.qubit_subspace_indices();
        Matrix::from_fn(indices.len(), indices.len(), |r, c| {
            full[(indices[r], indices[c])]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_limits_match_appendix_a() {
        assert!((CHARGE_DRIVE_MAX - 0.628_318).abs() < 1e-3);
        assert!((FLUX_DRIVE_MAX / CHARGE_DRIVE_MAX - 15.0).abs() < 1e-9);
        assert!((COUPLING_MAX - 2.0 * PI * 0.05).abs() < 1e-12);
    }

    #[test]
    fn control_count_matches_structure() {
        let d = DeviceModel::qubits_line(3);
        // 3 charge + 3 flux + 2 couplings.
        assert_eq!(d.num_controls(), 8);
        assert_eq!(d.control_hamiltonians().len(), 8);

        let grid = DeviceModel::qubits_grid(2, 2);
        // 4 charge + 4 flux + 4 couplings.
        assert_eq!(grid.num_controls(), 12);
    }

    #[test]
    fn qubit_controls_are_hermitian() {
        let d = DeviceModel::qubits_line(2);
        for c in d.control_hamiltonians() {
            assert!(c.operator.is_hermitian(1e-12), "{} not hermitian", c.label);
            assert_eq!(c.operator.shape(), (4, 4));
            assert!(c.max_amplitude > 0.0);
        }
    }

    #[test]
    fn qubit_charge_drive_is_pauli_x() {
        let d = DeviceModel::qubits_line(1);
        let controls = d.control_hamiltonians();
        let x = vqc_sim::gates::x();
        assert!(controls[0].operator.approx_eq(&x, 1e-12));
        // Flux drive is the |1><1| projector.
        let n = Matrix::diag(&[C64::ZERO, C64::ONE]);
        assert!(controls[1].operator.approx_eq(&n, 1e-12));
    }

    #[test]
    fn qutrit_dimensions() {
        let d = DeviceModel::qubits_line(2).with_qutrit_levels();
        assert_eq!(d.dim(), 9);
        assert_eq!(d.qubit_dim(), 4);
        let indices = d.qubit_subspace_indices();
        assert_eq!(indices, vec![0, 1, 3, 4]);
    }

    #[test]
    fn qutrit_embedding_round_trips() {
        let d = DeviceModel::qubits_line(2).with_qutrit_levels();
        let target = vqc_sim::gates::cx();
        let embedded = d.embed_qubit_unitary(&target);
        assert_eq!(embedded.shape(), (9, 9));
        assert!(embedded.is_unitary(1e-12));
        let projected = d.project_to_qubit_subspace(&embedded);
        assert!(projected.approx_eq(&target, 1e-12));
    }

    #[test]
    fn qubit_subspace_indices_are_identity_for_qubits() {
        let d = DeviceModel::qubits_line(3);
        assert_eq!(d.qubit_subspace_indices(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn drift_is_zero_in_rotating_frame() {
        let d = DeviceModel::qubits_line(2);
        assert!(d.drift().max_abs() < 1e-15);
    }

    #[test]
    fn coupling_operator_couples_both_qubits() {
        let d = DeviceModel::qubits_line(2);
        let coupling = &d.control_hamiltonians()[4];
        assert!(coupling.label.contains("coupling"));
        // (a†+a)⊗(a†+a) = X ⊗ X in the qubit approximation.
        let xx = vqc_sim::gates::x().kron(&vqc_sim::gates::x());
        assert!(coupling.operator.approx_eq(&xx, 1e-12));
    }
}
