//! The reusable GRAPE iteration workspace.
//!
//! GRAPE spends its entire budget evaluating [`GrapeWorkspace::fidelity_gradient`]:
//! hundreds of optimizer iterations, each diagonalizing every slice Hamiltonian and
//! multiplying out the forward/backward partial products. The seed implementation
//! heap-allocated every one of those matrices on every iteration; this workspace
//! owns all of them — per-slice eigensystems, propagators, partial products, and the
//! gradient scratch — allocated once per [`crate::grape::try_optimize_pulse`] call
//! and reused across all iterations. After construction (and one `set_target`),
//! `fidelity_gradient` performs **zero** heap allocations, which `vqc-pulse`'s
//! counting-allocator test asserts.
//!
//! Every matrix in a GRAPE run has a dimension fixed by the device — 2/4/16 for
//! 1q/2q/4q qubit blocks — so the workspace dispatches between two kernels at
//! construction: a [`StaticEngine`] over const-generic
//! [`SmallMatrix`](vqc_linalg::SmallMatrix) storage when `dim ∈ {2, 4, 16}` (fully
//! unrolled matmuls, a closed-form 2×2 eigensolver, and contiguously packed
//! per-slice buffers the partial-product passes stream through), and the dynamic
//! [`Matrix`] path otherwise (qutrit devices, odd dims). [`KernelPolicy`] and the
//! `VQC_SMALL_MATRIX=0` environment escape hatch force the dynamic path; both
//! kernels produce gradients that agree to machine precision, which the
//! `kernel_parity` proptest suite gates.
//!
//! The workspace is also the single home of the eigendecomposition-based slice
//! propagator `U_t = V e^{-iΔtΛ} V†`; [`crate::propagate`] drives the same path (the
//! Taylor [`vqc_linalg::expm`] stays as an independent reference that a debug
//! assertion checks it against). Both kernels can consult an [`EigenMemo`] so
//! repeated slice Hamiltonians — ubiquitous across duration probes and
//! hyperparameter re-tuning — skip the diagonalization entirely.

use crate::memo::EigenMemo;
use crate::profile::{self, Phase};
use crate::propagate::slice_hamiltonian_into;
use crate::{ControlHamiltonian, DeviceModel, PulseSequence};
use vqc_linalg::small::{self, SmallEighWorkspace, SmallMatrix};
use vqc_linalg::{eigh_into, EighWorkspace, Matrix, C64};

/// How [`GrapeWorkspace::with_kernel`] selects the iteration kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Bind the const-generic fast path when the device dimension is 2, 4, or 16
    /// and `VQC_SMALL_MATRIX` is not disabled; fall back to the dynamic
    /// [`Matrix`] kernels otherwise.
    Auto,
    /// Always use the dynamic [`Matrix`] kernels (used by benchmarks as the
    /// baseline and by the parity tests as the reference path).
    ForceDynamic,
}

/// Returns `false` when the `VQC_SMALL_MATRIX` environment variable disables the
/// static fast path (`0`, `off`, `false`, or `no`).
fn small_matrix_enabled() -> bool {
    match std::env::var("VQC_SMALL_MATRIX") {
        Ok(value) => !matches!(value.trim(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    }
}

/// The bound kernel: one of the three [`StaticEngine`] monomorphizations, or the
/// dynamic fallback (whose buffers live directly on [`GrapeWorkspace`]).
#[derive(Debug, Clone)]
enum StaticKernel {
    /// Dynamic [`Matrix`] kernels sized at runtime.
    Dynamic,
    /// 1-qubit blocks (2×2).
    Dim2(Box<StaticEngine<2>>),
    /// 2-qubit blocks (4×4).
    Dim4(Box<StaticEngine<4>>),
    /// 4-qubit blocks (16×16).
    Dim16(Box<StaticEngine<16>>),
}

/// Expands `$body` once per [`StaticEngine`] monomorphization, binding the boxed
/// engine as `$engine`; `$fallback` runs on the dynamic variant. This is the
/// single place the three const-generic instantiations fan out.
macro_rules! dispatch_static_kernel {
    ($kernel:expr, $engine:ident => $body:expr, dynamic => $fallback:expr) => {
        match $kernel {
            StaticKernel::Dim2($engine) => $body,
            StaticKernel::Dim4($engine) => $body,
            StaticKernel::Dim16($engine) => $body,
            StaticKernel::Dynamic => $fallback,
        }
    };
}

/// All buffers one GRAPE run needs, allocated once and reused every iteration.
#[derive(Debug, Clone)]
pub struct GrapeWorkspace {
    dim: usize,
    num_slices: usize,
    qubit_dim: f64,
    drift: Matrix,
    controls: Vec<ControlHamiltonian>,
    /// `(padded target)†`, set by [`GrapeWorkspace::set_target`].
    target_dagger: Option<Matrix>,

    /// The statically sized engine, when the device dimension allows one.
    kernel: StaticKernel,

    // --- per-slice eigensystems and propagators -----------------------------------
    slice_v: Vec<Matrix>,
    slice_lambdas: Vec<Vec<f64>>,
    slice_phases: Vec<Vec<C64>>,
    slice_unitaries: Vec<Matrix>,
    forward: Vec<Matrix>,
    backward: Vec<Matrix>,

    // --- iteration scratch ----------------------------------------------------------
    hamiltonian: Matrix,
    eigh: EighWorkspace,
    vdag: Matrix,
    scratch_a: Matrix,
    scratch_b: Matrix,
    scratch_c: Matrix,

    /// `gradient[k][t] = ∂(infidelity)/∂u_k(t)` after a `fidelity_gradient` call.
    gradient: Vec<Vec<f64>>,
}

impl GrapeWorkspace {
    /// Allocates every buffer needed to optimize `num_slices`-slice pulses on
    /// `device`, binding the const-generic fast path when the device dimension
    /// is 2, 4, or 16 (set `VQC_SMALL_MATRIX=0` to force the dynamic kernels).
    /// The target is supplied separately via [`GrapeWorkspace::set_target`]
    /// (propagation-only users never need one).
    ///
    /// # Panics
    ///
    /// Panics if `num_slices == 0`.
    pub fn new(device: &DeviceModel, num_slices: usize) -> Self {
        Self::with_kernel(device, num_slices, KernelPolicy::Auto)
    }

    /// Like [`GrapeWorkspace::new`] but with an explicit kernel policy.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices == 0`.
    pub fn with_kernel(device: &DeviceModel, num_slices: usize, policy: KernelPolicy) -> Self {
        assert!(num_slices > 0, "a pulse needs at least one time slice");
        let dim = device.dim();
        let controls = device.control_hamiltonians();
        let num_controls = controls.len();
        let kernel = match policy {
            KernelPolicy::ForceDynamic => StaticKernel::Dynamic,
            KernelPolicy::Auto if !small_matrix_enabled() => StaticKernel::Dynamic,
            KernelPolicy::Auto => match dim {
                2 => StaticKernel::Dim2(Box::new(StaticEngine::new(device, num_slices))),
                4 => StaticKernel::Dim4(Box::new(StaticEngine::new(device, num_slices))),
                16 => StaticKernel::Dim16(Box::new(StaticEngine::new(device, num_slices))),
                _ => StaticKernel::Dynamic,
            },
        };
        let square = || Matrix::zeros(dim, dim);
        GrapeWorkspace {
            dim,
            num_slices,
            qubit_dim: device.qubit_dim() as f64,
            drift: device.drift(),
            controls,
            target_dagger: None,
            kernel,
            slice_v: (0..num_slices).map(|_| square()).collect(),
            slice_lambdas: (0..num_slices).map(|_| Vec::with_capacity(dim)).collect(),
            slice_phases: (0..num_slices).map(|_| Vec::with_capacity(dim)).collect(),
            slice_unitaries: (0..num_slices).map(|_| square()).collect(),
            forward: (0..num_slices).map(|_| square()).collect(),
            backward: (0..num_slices).map(|_| square()).collect(),
            hamiltonian: square(),
            eigh: EighWorkspace::new(dim),
            vdag: square(),
            scratch_a: square(),
            scratch_b: square(),
            scratch_c: square(),
            gradient: vec![vec![0.0; num_slices]; num_controls],
        }
    }

    /// Whether the workspace bound the const-generic fast path at construction.
    pub fn uses_static_kernel(&self) -> bool {
        !matches!(self.kernel, StaticKernel::Dynamic)
    }

    /// Sets the optimization target: a `2^n x 2^n` unitary on the device's qubit
    /// subspace, zero-padded onto any leakage levels (so leaked population counts as
    /// infidelity) and stored daggered.
    ///
    /// # Panics
    ///
    /// Panics if the target is not a qubit-subspace unitary of the device this
    /// workspace was built for.
    pub fn set_target(&mut self, device: &DeviceModel, target: &Matrix) {
        assert_eq!(device.dim(), self.dim, "workspace built for another device");
        let padded_dagger = device.pad_qubit_unitary(target).dagger();
        dispatch_static_kernel!(
            &mut self.kernel,
            engine => engine.set_target(&padded_dagger),
            dynamic => ()
        );
        self.target_dagger = Some(padded_dagger);
    }

    /// Number of time slices the workspace was sized for.
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// The device's control Hamiltonians, captured at construction.
    pub fn controls(&self) -> &[ControlHamiltonian] {
        &self.controls
    }

    /// Per-slice propagators `U_t = exp(-i Δt H(t))` from the last propagation.
    pub fn slice_unitaries(&self) -> &[Matrix] {
        &self.slice_unitaries
    }

    /// Forward partial products `forward[t] = U_t · … · U_0` from the last
    /// propagation.
    pub fn forward(&self) -> &[Matrix] {
        &self.forward
    }

    /// Backward partial products `backward[t] = U_{T-1} · … · U_{t+1}` from the last
    /// propagation (`backward[T-1]` is the identity).
    pub fn backward(&self) -> &[Matrix] {
        &self.backward
    }

    /// The total evolution operator of the last propagated pulse.
    pub fn total(&self) -> &Matrix {
        self.forward
            .last()
            // audit:allow(unwrap): propagate records at least one slice before total() is reachable
            .expect("workspace has at least one slice")
    }

    /// The gradient filled by the last [`GrapeWorkspace::fidelity_gradient`] call:
    /// `gradient()[k][t] = ∂(infidelity)/∂u_k(t)`.
    pub fn gradient(&self) -> &[Vec<f64>] {
        &self.gradient
    }

    /// Checks that a pulse matches the geometry this workspace was allocated for.
    fn assert_pulse_shape(&self, pulse: &PulseSequence) {
        assert_eq!(
            pulse.num_controls(),
            self.controls.len(),
            "pulse has {} waveforms but the device has {} controls",
            pulse.num_controls(),
            self.controls.len()
        );
        assert_eq!(
            pulse.num_slices(),
            self.num_slices,
            "workspace sized for {} slices, pulse has {}",
            self.num_slices,
            pulse.num_slices()
        );
    }

    /// Propagates a pulse through the shared eigendecomposition path, filling the
    /// per-slice eigensystems, slice propagators, and forward/backward partial
    /// products (the static fast path copies its packed results into the dynamic
    /// accessor buffers, so [`GrapeWorkspace::slice_unitaries`] and friends are
    /// kernel-agnostic). Performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the pulse shape does not match the workspace.
    pub fn propagate(&mut self, pulse: &PulseSequence) {
        self.assert_pulse_shape(pulse);
        let Self {
            kernel,
            slice_unitaries,
            forward,
            backward,
            ..
        } = self;
        let handled = dispatch_static_kernel!(
            kernel,
            engine => {
                engine.propagate(pulse, None);
                engine.export_into(slice_unitaries, forward, backward);
                true
            },
            dynamic => false
        );
        if !handled {
            self.propagate_dynamic(pulse, None);
        }
    }

    /// Computes the trace infidelity of a pulse against the configured target and
    /// its exact gradient (via the Daleckii–Krein divided-difference formula),
    /// storing the gradient in [`GrapeWorkspace::gradient`] and returning the
    /// infidelity. Performs no heap allocation.
    ///
    /// On the static fast path only the gradient and infidelity are refreshed;
    /// use [`GrapeWorkspace::propagate`] when the propagator accessors are
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if no target was set or the pulse shape does not match the workspace.
    pub fn fidelity_gradient(&mut self, pulse: &PulseSequence) -> f64 {
        self.fidelity_gradient_inner(pulse, None)
    }

    /// [`GrapeWorkspace::fidelity_gradient`] with an [`EigenMemo`]: slices whose
    /// `(Δt, amplitudes)` were seen before reuse the cached eigensystem instead
    /// of re-diagonalizing. Allocation-free on memo hits; a miss allocates only
    /// the inserted cache entry.
    ///
    /// # Panics
    ///
    /// Panics if no target was set or the pulse shape does not match the workspace.
    pub fn fidelity_gradient_with_memo(
        &mut self,
        pulse: &PulseSequence,
        memo: &mut EigenMemo,
    ) -> f64 {
        self.fidelity_gradient_inner(pulse, Some(memo))
    }

    fn fidelity_gradient_inner(
        &mut self,
        pulse: &PulseSequence,
        memo: Option<&mut EigenMemo>,
    ) -> f64 {
        self.assert_pulse_shape(pulse);
        let Self {
            kernel, gradient, ..
        } = self;
        match kernel {
            StaticKernel::Dynamic => {}
            StaticKernel::Dim2(engine) => return engine.fidelity_gradient(pulse, gradient, memo),
            StaticKernel::Dim4(engine) => return engine.fidelity_gradient(pulse, gradient, memo),
            StaticKernel::Dim16(engine) => return engine.fidelity_gradient(pulse, gradient, memo),
        }
        self.fidelity_gradient_dynamic(pulse, memo)
    }

    /// The dynamic-kernel propagation pass (any dimension).
    fn propagate_dynamic(&mut self, pulse: &PulseSequence, mut memo: Option<&mut EigenMemo>) {
        let dim = self.dim;
        let dt = pulse.dt_ns();
        let num_controls = self.controls.len();
        let memo_armed = memo.is_some();
        let mut lap = profile::Lap::start();

        for t in 0..self.num_slices {
            let slice_lambdas = &mut self.slice_lambdas[t];
            let slice_v = &mut self.slice_v[t];
            let hit = match memo.as_deref_mut() {
                Some(m) => m.probe_with(
                    dim,
                    dt,
                    (0..num_controls).map(|k| pulse.amplitude(k, t)),
                    |lambdas, vectors| {
                        slice_lambdas.clear();
                        slice_lambdas.extend_from_slice(lambdas);
                        slice_v.as_mut_slice().copy_from_slice(vectors);
                    },
                ),
                None => false,
            };
            if memo_armed {
                lap.mark(Phase::MemoProbe);
            }
            if !hit {
                slice_hamiltonian_into(
                    &self.drift,
                    &self.controls,
                    pulse,
                    t,
                    &mut self.hamiltonian,
                );
                lap.mark(Phase::HamiltonianAssembly);
                let sweeps = eigh_into(&self.hamiltonian, &mut self.eigh, slice_lambdas, slice_v);
                lap.add_sweeps(sweeps as u64);
                lap.mark(Phase::Eigendecomposition);
                if let Some(m) = memo.as_deref_mut() {
                    m.store_probed(slice_lambdas, slice_v.as_slice().iter().copied());
                    lap.mark(Phase::MemoProbe);
                }
            }
            let phases = &mut self.slice_phases[t];
            phases.clear();
            phases.extend(self.slice_lambdas[t].iter().map(|&l| C64::cis(-dt * l)));

            // U_t = V · diag(phases) · V†: scale the columns of V, then multiply.
            let v = &self.slice_v[t];
            v.dagger_into(&mut self.vdag);
            for c in 0..dim {
                let phase = phases[c];
                for r in 0..dim {
                    self.scratch_a[(r, c)] = v[(r, c)] * phase;
                }
            }
            self.scratch_a
                .matmul_into(&self.vdag, &mut self.slice_unitaries[t]);
            lap.mark(Phase::Propagation);
        }

        // forward[t] = U_t · forward[t-1]
        self.forward[0].copy_from(&self.slice_unitaries[0]);
        for t in 1..self.num_slices {
            let (head, tail) = self.forward.split_at_mut(t);
            self.slice_unitaries[t].matmul_into(&head[t - 1], &mut tail[0]);
        }

        // backward[t] = backward[t+1] · U_{t+1}, starting from the identity.
        let last = self.num_slices - 1;
        self.backward[last].as_mut_slice().fill(C64::ZERO);
        for i in 0..dim {
            self.backward[last][(i, i)] = C64::ONE;
        }
        for t in (0..last).rev() {
            let (head, tail) = self.backward.split_at_mut(t + 1);
            tail[0].matmul_into(&self.slice_unitaries[t + 1], &mut head[t]);
        }
        lap.mark(Phase::Propagation);
    }

    /// The dynamic-kernel gradient pass (any dimension).
    fn fidelity_gradient_dynamic(
        &mut self,
        pulse: &PulseSequence,
        memo: Option<&mut EigenMemo>,
    ) -> f64 {
        assert!(
            self.target_dagger.is_some(),
            "set_target must be called before fidelity_gradient"
        );
        self.propagate_dynamic(pulse, memo);
        let mut lap = profile::Lap::start();
        let dim = self.dim;
        let dim_f = self.qubit_dim;
        let dt = pulse.dt_ns();
        // audit:allow(unwrap): target_dagger is set earlier in this method
        let target_dagger = self.target_dagger.as_ref().expect("target set above");

        // overlap = Tr(V† U_total) / d, computed as Σ_ik V†[i,k]·U[k,i] in O(dim²).
        // audit:allow(unwrap): propagate ran on the line above and records every slice
        let total = self.forward.last().expect("at least one slice");
        let mut overlap = C64::ZERO;
        for i in 0..dim {
            for k in 0..dim {
                overlap += target_dagger[(i, k)] * total[(k, i)];
            }
        }
        overlap = overlap * (1.0 / dim_f);
        let infidelity = 1.0 - overlap.norm_sqr();
        let conj_overlap = overlap.conj();

        // --- exact gradient via the Daleckii–Krein formula ---------------------------
        // For slice t: U_total = backward[t] · U_t · forward[t-1], and
        //   ∂U_t/∂u_k = V (Γ ∘ (V† H_k V)) V†,
        // where Γ_ij is the divided difference of f(λ) = e^{-iΔtλ} at (λ_i, λ_j).
        // Writing M' = forward[t-1] · V_target† · backward[t] and P = V† M' V,
        //   Tr(V_target† ∂U_total/∂u_k) = Σ_ab H_k[a,b] · G[a,b]
        // with  G = conj(V) · (Pᵀ ∘ Γ) · Vᵀ,  which is independent of k. To stay in
        // plain matmul kernels, G is computed as conj(V · conj(Pᵀ ∘ Γ) · V†): the
        // conjugation folds into building T = conj(Pᵀ ∘ Γ) and into the final
        // contraction.
        for t in 0..self.num_slices {
            // m' = forward[t-1] · target† · backward[t]   (forward[-1] = identity)
            if t == 0 {
                target_dagger.matmul_into(&self.backward[0], &mut self.scratch_b);
            } else {
                self.forward[t - 1].matmul_into(target_dagger, &mut self.scratch_a);
                self.scratch_a
                    .matmul_into(&self.backward[t], &mut self.scratch_b);
            }
            let v = &self.slice_v[t];
            v.dagger_into(&mut self.vdag);
            // p = V† · m' · V
            self.vdag.matmul_into(&self.scratch_b, &mut self.scratch_a);
            self.scratch_a.matmul_into(v, &mut self.scratch_c);
            let p = &self.scratch_c;

            let lambdas = &self.slice_lambdas[t];
            let phases = &self.slice_phases[t];
            // T = conj(Pᵀ ∘ Γ), written into scratch_b.
            for i in 0..dim {
                for j in 0..dim {
                    let gamma = if (lambdas[i] - lambdas[j]).abs() < 1e-10 {
                        C64::new(0.0, -dt) * phases[i]
                    } else {
                        (phases[i] - phases[j]) * (1.0 / (lambdas[i] - lambdas[j]))
                    };
                    self.scratch_b[(j, i)] = (p[(i, j)] * gamma).conj();
                }
            }
            // conj(G) = V · T · V†
            v.matmul_into(&self.scratch_b, &mut self.scratch_a);
            self.scratch_a.matmul_into(&self.vdag, &mut self.scratch_c);
            let g_conj = &self.scratch_c;

            for (k, control) in self.controls.iter().enumerate() {
                let h_k = &control.operator;
                let mut contraction = C64::ZERO;
                for a in 0..dim {
                    for b in 0..dim {
                        let h_ab = h_k[(a, b)];
                        if h_ab.re != 0.0 || h_ab.im != 0.0 {
                            contraction += h_ab * g_conj[(a, b)].conj();
                        }
                    }
                }
                let dg = contraction / dim_f;
                let dfidelity = 2.0 * (conj_overlap * dg).re;
                self.gradient[k][t] = -dfidelity;
            }
        }
        lap.mark(Phase::GradientContraction);

        infidelity
    }
}

/// The const-generic GRAPE engine: the entire hot loop over
/// [`SmallMatrix<N>`](SmallMatrix) storage.
///
/// All per-slice buffer families are packed `Vec<SmallMatrix<N>>` /
/// `Vec<[f64; N]>` — one contiguous allocation each — so the blocked passes of
/// [`StaticEngine::propagate`] (Hamiltonian+eigensystem pass, propagator pass,
/// forward sweep, backward sweep) stream through cache-resident data. Control
/// operators are kept as row-major nonzero lists, matching the traversal order
/// of the dynamic kernel's zero-skip so both paths contract gradients in the
/// same floating-point order.
#[derive(Debug, Clone)]
struct StaticEngine<const N: usize> {
    num_slices: usize,
    qubit_dim: f64,
    drift: SmallMatrix<N>,
    /// Row-major `(row, col, entry)` nonzeros of each control operator.
    control_sparse: Vec<Vec<(usize, usize, C64)>>,
    target_dagger: Option<SmallMatrix<N>>,

    // --- packed per-slice buffer families ------------------------------------------
    /// Slice Hamiltonians for the phase-major (no-memo) assembly pass; the
    /// memo path assembles into the `hamiltonian` scratch slice-by-slice.
    slice_h: Vec<SmallMatrix<N>>,
    slice_v: Vec<SmallMatrix<N>>,
    slice_vdag: Vec<SmallMatrix<N>>,
    slice_lambda: Vec<[f64; N]>,
    slice_phase: Vec<[C64; N]>,
    slice_u: Vec<SmallMatrix<N>>,
    forward: Vec<SmallMatrix<N>>,
    backward: Vec<SmallMatrix<N>>,

    // --- iteration scratch ----------------------------------------------------------
    hamiltonian: SmallMatrix<N>,
    eigh: SmallEighWorkspace<N>,
    scratch_a: SmallMatrix<N>,
    scratch_b: SmallMatrix<N>,
    scratch_c: SmallMatrix<N>,
    /// Whether `slice_v`/`slice_vdag` hold a converged eigenbasis from a prior
    /// propagation, enabling the warm-started Jacobi path.
    warmed: bool,
}

impl<const N: usize> StaticEngine<N> {
    fn new(device: &DeviceModel, num_slices: usize) -> Self {
        debug_assert_eq!(device.dim(), N, "engine instantiated for the wrong dim");
        let control_sparse = device
            .control_hamiltonians()
            .iter()
            .map(|control| {
                let mut entries = Vec::new();
                for r in 0..N {
                    for c in 0..N {
                        let value = control.operator[(r, c)];
                        if value.re != 0.0 || value.im != 0.0 {
                            entries.push((r, c, value));
                        }
                    }
                }
                entries
            })
            .collect();
        StaticEngine {
            num_slices,
            qubit_dim: device.qubit_dim() as f64,
            drift: SmallMatrix::from_matrix(&device.drift()),
            control_sparse,
            target_dagger: None,
            slice_h: vec![SmallMatrix::ZERO; num_slices],
            slice_v: vec![SmallMatrix::ZERO; num_slices],
            slice_vdag: vec![SmallMatrix::ZERO; num_slices],
            slice_lambda: vec![[0.0; N]; num_slices],
            slice_phase: vec![[C64::ZERO; N]; num_slices],
            slice_u: vec![SmallMatrix::ZERO; num_slices],
            forward: vec![SmallMatrix::ZERO; num_slices],
            backward: vec![SmallMatrix::ZERO; num_slices],
            hamiltonian: SmallMatrix::ZERO,
            eigh: SmallEighWorkspace::new(),
            scratch_a: SmallMatrix::ZERO,
            scratch_b: SmallMatrix::ZERO,
            scratch_c: SmallMatrix::ZERO,
            warmed: false,
        }
    }

    fn set_target(&mut self, padded_dagger: &Matrix) {
        self.target_dagger = Some(SmallMatrix::from_matrix(padded_dagger));
    }

    /// Copies the packed propagation results into the dynamic accessor buffers
    /// (allocation-free: plain entry copies into pre-sized matrices).
    fn export_into(
        &self,
        slice_unitaries: &mut [Matrix],
        forward: &mut [Matrix],
        backward: &mut [Matrix],
    ) {
        for (src, dst) in self.slice_u.iter().zip(slice_unitaries.iter_mut()) {
            src.write_to(dst);
        }
        for (src, dst) in self.forward.iter().zip(forward.iter_mut()) {
            src.write_to(dst);
        }
        for (src, dst) in self.backward.iter().zip(backward.iter_mut()) {
            src.write_to(dst);
        }
    }

    /// The blocked propagation pass: per-slice eigensystems, then propagators,
    /// then the forward and backward partial-product sweeps, each streaming
    /// through one packed buffer family.
    ///
    /// The plain (no-memo) path — the warm GRAPE gradient loop the
    /// `profile_overhead` bench gates — is phase-major: Hamiltonians for every
    /// slice land in the packed `slice_h` buffer, then every slice
    /// eigendecomposes, so the armed profiler pays one [`profile::Lap`] mark
    /// per *pass* rather than per slice. The memo path stays slice-major
    /// because [`EigenMemo::store_probed`] files under the key of the last
    /// missed probe; its per-slice hashing dwarfs a tick read anyway.
    fn propagate(&mut self, pulse: &PulseSequence, memo: Option<&mut EigenMemo>) {
        let dt = pulse.dt_ns();
        let num_controls = self.control_sparse.len();
        let mut lap = profile::Lap::start();

        if let Some(m) = memo {
            // Memo pass: probe, assemble, eigendecompose, store — interleaved
            // per slice to honor the memo's probe/store pairing.
            for t in 0..self.num_slices {
                let slice_lambda = &mut self.slice_lambda[t];
                let slice_v = &mut self.slice_v[t];
                let hit = m.probe_with(
                    N,
                    dt,
                    (0..num_controls).map(|k| pulse.amplitude(k, t)),
                    |lambdas, vectors| {
                        slice_lambda.copy_from_slice(lambdas);
                        slice_v.fill_from_entries(vectors);
                    },
                );
                lap.mark(Phase::MemoProbe);
                if hit {
                    continue;
                }
                // H = drift + Σ_k u_k(t) · H_k over the packed nonzero lists.
                self.hamiltonian = self.drift;
                for (k, entries) in self.control_sparse.iter().enumerate() {
                    let amp = pulse.amplitude(k, t);
                    if amp != 0.0 {
                        let scale = C64::from_real(amp);
                        for &(r, c, value) in entries {
                            self.hamiltonian.rows_mut()[r][c] += value * scale;
                        }
                    }
                }
                lap.mark(Phase::HamiltonianAssembly);
                let sweeps = if self.warmed {
                    // Warm-started Jacobi: rotate H into this slice's previous
                    // eigenbasis, H' = V† H V. Between optimizer iterations the
                    // amplitudes move only slightly, so H' is nearly diagonal
                    // and the sweep count collapses (to zero when the slice is
                    // re-evaluated unchanged). Compose V ← V_prev · V' after.
                    self.slice_vdag[t].matmul_into(&self.hamiltonian, &mut self.scratch_b);
                    self.scratch_b.matmul_into(slice_v, &mut self.scratch_c);
                    let sweeps = small::eigh_into(
                        &self.scratch_c,
                        &mut self.eigh,
                        slice_lambda,
                        &mut self.scratch_b,
                    );
                    slice_v.matmul_into(&self.scratch_b, &mut self.scratch_a);
                    *slice_v = self.scratch_a;
                    sweeps
                } else {
                    small::eigh_into(&self.hamiltonian, &mut self.eigh, slice_lambda, slice_v)
                };
                lap.add_sweeps(sweeps as u64);
                lap.mark(Phase::Eigendecomposition);
                m.store_probed(slice_lambda, slice_v.entries());
                lap.mark(Phase::MemoProbe);
            }
        } else {
            // Assembly pass: H_t = drift + Σ_k u_k(t) · H_k for every slice,
            // into the packed `slice_h` family.
            for t in 0..self.num_slices {
                let hamiltonian = &mut self.slice_h[t];
                *hamiltonian = self.drift;
                for (k, entries) in self.control_sparse.iter().enumerate() {
                    let amp = pulse.amplitude(k, t);
                    if amp != 0.0 {
                        let scale = C64::from_real(amp);
                        for &(r, c, value) in entries {
                            hamiltonian.rows_mut()[r][c] += value * scale;
                        }
                    }
                }
            }
            lap.mark(Phase::HamiltonianAssembly);

            // Eigensystem pass. Warm-started Jacobi where a previous basis
            // exists: rotate H into the slice's previous eigenbasis,
            // H' = V† H V — between optimizer iterations the amplitudes move
            // only slightly, so H' is nearly diagonal and the sweep count
            // collapses. Compose V ← V_prev · V' after. (`slice_vdag` still
            // holds the previous iteration's bases here; the propagator pass
            // below refreshes it only after every eigensystem is done.)
            let mut total_sweeps = 0u64;
            for t in 0..self.num_slices {
                let slice_lambda = &mut self.slice_lambda[t];
                let slice_v = &mut self.slice_v[t];
                let sweeps = if self.warmed {
                    self.slice_vdag[t].matmul_into(&self.slice_h[t], &mut self.scratch_b);
                    self.scratch_b.matmul_into(slice_v, &mut self.scratch_c);
                    let sweeps = small::eigh_into(
                        &self.scratch_c,
                        &mut self.eigh,
                        slice_lambda,
                        &mut self.scratch_b,
                    );
                    slice_v.matmul_into(&self.scratch_b, &mut self.scratch_a);
                    *slice_v = self.scratch_a;
                    sweeps
                } else {
                    small::eigh_into(&self.slice_h[t], &mut self.eigh, slice_lambda, slice_v)
                };
                total_sweeps += sweeps as u64;
            }
            lap.add_sweeps(total_sweeps);
            lap.mark(Phase::Eigendecomposition);
        }

        // Propagator pass: U_t = V · diag(phases) · V†; V† is cached for the
        // gradient pass.
        for t in 0..self.num_slices {
            let phases = &mut self.slice_phase[t];
            for (phase, &lambda) in phases.iter_mut().zip(self.slice_lambda[t].iter()) {
                *phase = C64::cis(-dt * lambda);
            }

            let v = &self.slice_v[t];
            v.dagger_into(&mut self.slice_vdag[t]);
            let phases = &self.slice_phase[t];
            for (scaled_row, v_row) in self.scratch_a.rows_mut().iter_mut().zip(v.rows().iter()) {
                for ((slot, &entry), &phase) in
                    scaled_row.iter_mut().zip(v_row.iter()).zip(phases.iter())
                {
                    *slot = entry * phase;
                }
            }
            self.scratch_a
                .matmul_into(&self.slice_vdag[t], &mut self.slice_u[t]);
        }

        // Forward sweep: forward[t] = U_t · forward[t-1], streaming the packed
        // buffers.
        self.forward[0] = self.slice_u[0];
        for t in 1..self.num_slices {
            let (head, tail) = self.forward.split_at_mut(t);
            self.slice_u[t].matmul_into(&head[t - 1], &mut tail[0]);
        }

        // Backward sweep: backward[t] = backward[t+1] · U_{t+1}, from the
        // identity.
        let last = self.num_slices - 1;
        self.backward[last] = SmallMatrix::identity();
        for t in (0..last).rev() {
            let (head, tail) = self.backward.split_at_mut(t + 1);
            tail[0].matmul_into(&self.slice_u[t + 1], &mut head[t]);
        }
        lap.mark(Phase::Propagation);

        // Every slice now holds a converged eigenbasis the next propagation can
        // warm-start from.
        self.warmed = true;
    }

    /// The static-path mirror of [`GrapeWorkspace::fidelity_gradient_dynamic`]:
    /// same formula, same floating-point operation order, fixed trip counts.
    fn fidelity_gradient(
        &mut self,
        pulse: &PulseSequence,
        gradient: &mut [Vec<f64>],
        memo: Option<&mut EigenMemo>,
    ) -> f64 {
        assert!(
            self.target_dagger.is_some(),
            "set_target must be called before fidelity_gradient"
        );
        self.propagate(pulse, memo);
        // The overlap and Daleckii–Krein contraction below are one contiguous
        // stretch: a single lap pair charges it all to GradientContraction.
        let mut lap = profile::Lap::start();
        let dim_f = self.qubit_dim;
        let dt = pulse.dt_ns();
        // audit:allow(unwrap): target_dagger is set earlier in this method
        let target_dagger = self.target_dagger.as_ref().expect("target set above");

        // overlap = Tr(V† U_total) / d.
        let total = &self.forward[self.num_slices - 1];
        let mut overlap = C64::ZERO;
        for (i, td_row) in target_dagger.rows().iter().enumerate() {
            for (k, &td) in td_row.iter().enumerate() {
                overlap += td * total.rows()[k][i];
            }
        }
        overlap = overlap * (1.0 / dim_f);
        let infidelity = 1.0 - overlap.norm_sqr();
        let conj_overlap = overlap.conj();

        // Daleckii–Krein gradient, slice by slice (see the dynamic path for the
        // derivation; this is the same computation over packed static buffers,
        // with V† reused from the propagation pass). The loop is slice-major
        // while `gradient` is control-major, so indexing stays explicit.
        #[allow(clippy::needless_range_loop)]
        for t in 0..self.num_slices {
            // m' = forward[t-1] · target† · backward[t]   (forward[-1] = identity)
            if t == 0 {
                target_dagger.matmul_into(&self.backward[0], &mut self.scratch_b);
            } else {
                self.forward[t - 1].matmul_into(target_dagger, &mut self.scratch_a);
                self.scratch_a
                    .matmul_into(&self.backward[t], &mut self.scratch_b);
            }
            let v = &self.slice_v[t];
            let vdag = &self.slice_vdag[t];
            // p = V† · m' · V
            vdag.matmul_into(&self.scratch_b, &mut self.scratch_a);
            self.scratch_a.matmul_into(v, &mut self.scratch_c);

            let lambdas = &self.slice_lambda[t];
            let phases = &self.slice_phase[t];
            // T = conj(Pᵀ ∘ Γ), written into scratch_b.
            for i in 0..N {
                for j in 0..N {
                    let gamma = if (lambdas[i] - lambdas[j]).abs() < 1e-10 {
                        C64::new(0.0, -dt) * phases[i]
                    } else {
                        (phases[i] - phases[j]) * (1.0 / (lambdas[i] - lambdas[j]))
                    };
                    self.scratch_b.rows_mut()[j][i] = (self.scratch_c.rows()[i][j] * gamma).conj();
                }
            }
            // conj(G) = V · T · V†
            v.matmul_into(&self.scratch_b, &mut self.scratch_a);
            self.scratch_a.matmul_into(vdag, &mut self.scratch_c);
            let g_conj = &self.scratch_c;

            for (k, entries) in self.control_sparse.iter().enumerate() {
                let mut contraction = C64::ZERO;
                for &(a, b, h_ab) in entries {
                    contraction += h_ab * g_conj.rows()[a][b].conj();
                }
                let dg = contraction / dim_f;
                let dfidelity = 2.0 * (conj_overlap * dg).re;
                gradient[k][t] = -dfidelity;
            }
        }
        lap.mark(Phase::GradientContraction);

        infidelity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grape::fidelity_gradient;
    use vqc_sim::gates;

    #[test]
    fn workspace_gradient_matches_the_allocating_reference() {
        let device = DeviceModel::qubits_line(2);
        let target = gates::cx();
        let pulse = PulseSequence::seeded_guess(&device, 6, 0.5, 3);

        let reference = fidelity_gradient(&target, &device, &pulse);
        let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
        workspace.set_target(&device, &target);
        // Run twice through the same buffers: iteration two must not see leftovers.
        let _ = workspace.fidelity_gradient(&pulse);
        let infidelity = workspace.fidelity_gradient(&pulse);

        assert!((infidelity - reference.infidelity).abs() < 1e-12);
        for k in 0..device.num_controls() {
            for t in 0..pulse.num_slices() {
                assert!(
                    (workspace.gradient()[k][t] - reference.gradient[k][t]).abs() < 1e-12,
                    "control {k} slice {t}: workspace {} vs reference {}",
                    workspace.gradient()[k][t],
                    reference.gradient[k][t]
                );
            }
        }
    }

    #[test]
    fn static_and_dynamic_kernels_agree() {
        let device = DeviceModel::qubits_line(2);
        let target = gates::cx();
        let pulse = PulseSequence::seeded_guess(&device, 6, 0.5, 3);

        let mut fast = GrapeWorkspace::new(&device, pulse.num_slices());
        if !fast.uses_static_kernel() {
            // VQC_SMALL_MATRIX=0 pins every workspace dynamic; parity is then
            // trivially true and this test has nothing to check.
            return;
        }
        let mut slow =
            GrapeWorkspace::with_kernel(&device, pulse.num_slices(), KernelPolicy::ForceDynamic);
        assert!(!slow.uses_static_kernel());
        fast.set_target(&device, &target);
        slow.set_target(&device, &target);

        let fast_infidelity = fast.fidelity_gradient(&pulse);
        let slow_infidelity = slow.fidelity_gradient(&pulse);
        assert!((fast_infidelity - slow_infidelity).abs() < 1e-12);
        for k in 0..device.num_controls() {
            for t in 0..pulse.num_slices() {
                assert!(
                    (fast.gradient()[k][t] - slow.gradient()[k][t]).abs() < 1e-12,
                    "control {k} slice {t}"
                );
            }
        }

        // A second evaluation on a perturbed pulse exercises the warm-started
        // Jacobi path (the engine reuses each slice's previous eigenbasis);
        // parity with the cold dynamic kernel must hold there too.
        let perturbed = PulseSequence::seeded_guess(&device, 6, 0.45, 4);
        let fast_infidelity = fast.fidelity_gradient(&perturbed);
        let slow_infidelity = slow.fidelity_gradient(&perturbed);
        assert!((fast_infidelity - slow_infidelity).abs() < 1e-12);
        for k in 0..device.num_controls() {
            for t in 0..perturbed.num_slices() {
                assert!(
                    (fast.gradient()[k][t] - slow.gradient()[k][t]).abs() < 1e-12,
                    "warm path: control {k} slice {t}"
                );
            }
        }
    }

    #[test]
    fn qutrit_devices_fall_back_to_the_dynamic_kernel() {
        let device = DeviceModel::qubits_line(1).with_qutrit_levels();
        let workspace = GrapeWorkspace::new(&device, 4);
        assert!(
            !workspace.uses_static_kernel(),
            "dim 3 has no static engine"
        );
    }

    #[test]
    fn workspace_propagation_matches_taylor_expm() {
        use vqc_linalg::expm::expm;
        let device = DeviceModel::qubits_line(1);
        let pulse = PulseSequence::seeded_guess(&device, 8, 0.5, 5);
        let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
        workspace.propagate(&pulse);
        let controls = device.control_hamiltonians();
        let drift = device.drift();
        for t in 0..pulse.num_slices() {
            let h = crate::propagate::slice_hamiltonian(&drift, &controls, &pulse, t);
            let taylor = expm(&h.scale(C64::new(0.0, -pulse.dt_ns())));
            assert!(
                workspace.slice_unitaries()[t].approx_eq(&taylor, 1e-12),
                "slice {t} diverges from the Taylor reference"
            );
        }
    }

    #[test]
    fn memoized_gradient_matches_and_hits_on_replay() {
        let device = DeviceModel::qubits_line(2);
        let target = gates::cx();
        let pulse = PulseSequence::seeded_guess(&device, 6, 0.5, 3);

        let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
        workspace.set_target(&device, &target);
        let plain = workspace.fidelity_gradient(&pulse);
        let reference: Vec<Vec<f64>> = workspace.gradient().to_vec();

        let mut memo = EigenMemo::new();
        let first = workspace.fidelity_gradient_with_memo(&pulse, &mut memo);
        assert_eq!(memo.misses(), pulse.num_slices() as u64);
        let second = workspace.fidelity_gradient_with_memo(&pulse, &mut memo);
        assert_eq!(memo.hits(), pulse.num_slices() as u64);

        assert!((first - plain).abs() < 1e-15);
        assert!((second - plain).abs() < 1e-15);
        for (k, reference_row) in reference.iter().enumerate() {
            for (t, &expected) in reference_row.iter().enumerate() {
                assert!(
                    (workspace.gradient()[k][t] - expected).abs() < 1e-15,
                    "memoized gradient must be identical"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "set_target")]
    fn gradient_without_target_is_rejected() {
        let device = DeviceModel::qubits_line(1);
        let pulse = PulseSequence::seeded_guess(&device, 4, 0.5, 1);
        let mut workspace = GrapeWorkspace::new(&device, 4);
        workspace.fidelity_gradient(&pulse);
    }

    #[test]
    #[should_panic(expected = "slices")]
    fn mismatched_slice_count_is_rejected() {
        let device = DeviceModel::qubits_line(1);
        let pulse = PulseSequence::seeded_guess(&device, 4, 0.5, 1);
        let mut workspace = GrapeWorkspace::new(&device, 5);
        workspace.propagate(&pulse);
    }
}
