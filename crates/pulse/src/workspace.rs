//! The reusable GRAPE iteration workspace.
//!
//! GRAPE spends its entire budget evaluating [`GrapeWorkspace::fidelity_gradient`]:
//! hundreds of optimizer iterations, each diagonalizing every slice Hamiltonian and
//! multiplying out the forward/backward partial products. The seed implementation
//! heap-allocated every one of those matrices on every iteration; this workspace
//! owns all of them — per-slice eigensystems, propagators, partial products, and the
//! gradient scratch — allocated once per [`crate::grape::try_optimize_pulse`] call
//! and reused across all iterations. After construction (and one `set_target`),
//! `fidelity_gradient` performs **zero** heap allocations, which `vqc-pulse`'s
//! counting-allocator test asserts.
//!
//! The workspace is also the single home of the eigendecomposition-based slice
//! propagator `U_t = V e^{-iΔtΛ} V†`; [`crate::propagate`] drives the same path (the
//! Taylor [`vqc_linalg::expm`] stays as an independent reference that a debug
//! assertion checks it against).

use crate::propagate::slice_hamiltonian_into;
use crate::{ControlHamiltonian, DeviceModel, PulseSequence};
use vqc_linalg::{eigh_into, EighWorkspace, Matrix, C64};

/// All buffers one GRAPE run needs, allocated once and reused every iteration.
#[derive(Debug, Clone)]
pub struct GrapeWorkspace {
    dim: usize,
    num_slices: usize,
    qubit_dim: f64,
    drift: Matrix,
    controls: Vec<ControlHamiltonian>,
    /// `(padded target)†`, set by [`GrapeWorkspace::set_target`].
    target_dagger: Option<Matrix>,

    // --- per-slice eigensystems and propagators -----------------------------------
    slice_v: Vec<Matrix>,
    slice_lambdas: Vec<Vec<f64>>,
    slice_phases: Vec<Vec<C64>>,
    slice_unitaries: Vec<Matrix>,
    forward: Vec<Matrix>,
    backward: Vec<Matrix>,

    // --- iteration scratch ----------------------------------------------------------
    hamiltonian: Matrix,
    eigh: EighWorkspace,
    vdag: Matrix,
    scratch_a: Matrix,
    scratch_b: Matrix,
    scratch_c: Matrix,

    /// `gradient[k][t] = ∂(infidelity)/∂u_k(t)` after a `fidelity_gradient` call.
    gradient: Vec<Vec<f64>>,
}

impl GrapeWorkspace {
    /// Allocates every buffer needed to optimize `num_slices`-slice pulses on
    /// `device`. The target is supplied separately via
    /// [`GrapeWorkspace::set_target`] (propagation-only users never need one).
    ///
    /// # Panics
    ///
    /// Panics if `num_slices == 0`.
    pub fn new(device: &DeviceModel, num_slices: usize) -> Self {
        assert!(num_slices > 0, "a pulse needs at least one time slice");
        let dim = device.dim();
        let controls = device.control_hamiltonians();
        let num_controls = controls.len();
        let square = || Matrix::zeros(dim, dim);
        GrapeWorkspace {
            dim,
            num_slices,
            qubit_dim: device.qubit_dim() as f64,
            drift: device.drift(),
            controls,
            target_dagger: None,
            slice_v: (0..num_slices).map(|_| square()).collect(),
            slice_lambdas: (0..num_slices).map(|_| Vec::with_capacity(dim)).collect(),
            slice_phases: (0..num_slices).map(|_| Vec::with_capacity(dim)).collect(),
            slice_unitaries: (0..num_slices).map(|_| square()).collect(),
            forward: (0..num_slices).map(|_| square()).collect(),
            backward: (0..num_slices).map(|_| square()).collect(),
            hamiltonian: square(),
            eigh: EighWorkspace::new(dim),
            vdag: square(),
            scratch_a: square(),
            scratch_b: square(),
            scratch_c: square(),
            gradient: vec![vec![0.0; num_slices]; num_controls],
        }
    }

    /// Sets the optimization target: a `2^n x 2^n` unitary on the device's qubit
    /// subspace, zero-padded onto any leakage levels (so leaked population counts as
    /// infidelity) and stored daggered.
    ///
    /// # Panics
    ///
    /// Panics if the target is not a qubit-subspace unitary of the device this
    /// workspace was built for.
    pub fn set_target(&mut self, device: &DeviceModel, target: &Matrix) {
        assert_eq!(device.dim(), self.dim, "workspace built for another device");
        self.target_dagger = Some(device.pad_qubit_unitary(target).dagger());
    }

    /// Number of time slices the workspace was sized for.
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// The device's control Hamiltonians, captured at construction.
    pub fn controls(&self) -> &[ControlHamiltonian] {
        &self.controls
    }

    /// Per-slice propagators `U_t = exp(-i Δt H(t))` from the last propagation.
    pub fn slice_unitaries(&self) -> &[Matrix] {
        &self.slice_unitaries
    }

    /// Forward partial products `forward[t] = U_t · … · U_0` from the last
    /// propagation.
    pub fn forward(&self) -> &[Matrix] {
        &self.forward
    }

    /// Backward partial products `backward[t] = U_{T-1} · … · U_{t+1}` from the last
    /// propagation (`backward[T-1]` is the identity).
    pub fn backward(&self) -> &[Matrix] {
        &self.backward
    }

    /// The total evolution operator of the last propagated pulse.
    pub fn total(&self) -> &Matrix {
        self.forward
            .last()
            // audit:allow(unwrap): propagate records at least one slice before total() is reachable
            .expect("workspace has at least one slice")
    }

    /// The gradient filled by the last [`GrapeWorkspace::fidelity_gradient`] call:
    /// `gradient()[k][t] = ∂(infidelity)/∂u_k(t)`.
    pub fn gradient(&self) -> &[Vec<f64>] {
        &self.gradient
    }

    /// Checks that a pulse matches the geometry this workspace was allocated for.
    fn assert_pulse_shape(&self, pulse: &PulseSequence) {
        assert_eq!(
            pulse.num_controls(),
            self.controls.len(),
            "pulse has {} waveforms but the device has {} controls",
            pulse.num_controls(),
            self.controls.len()
        );
        assert_eq!(
            pulse.num_slices(),
            self.num_slices,
            "workspace sized for {} slices, pulse has {}",
            self.num_slices,
            pulse.num_slices()
        );
    }

    /// Propagates a pulse through the shared eigendecomposition path, filling the
    /// per-slice eigensystems, slice propagators, and forward/backward partial
    /// products. Performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the pulse shape does not match the workspace.
    pub fn propagate(&mut self, pulse: &PulseSequence) {
        self.assert_pulse_shape(pulse);
        let dim = self.dim;
        let dt = pulse.dt_ns();

        for t in 0..self.num_slices {
            slice_hamiltonian_into(&self.drift, &self.controls, pulse, t, &mut self.hamiltonian);
            eigh_into(
                &self.hamiltonian,
                &mut self.eigh,
                &mut self.slice_lambdas[t],
                &mut self.slice_v[t],
            );
            let phases = &mut self.slice_phases[t];
            phases.clear();
            phases.extend(self.slice_lambdas[t].iter().map(|&l| C64::cis(-dt * l)));

            // U_t = V · diag(phases) · V†: scale the columns of V, then multiply.
            let v = &self.slice_v[t];
            v.dagger_into(&mut self.vdag);
            for c in 0..dim {
                let phase = phases[c];
                for r in 0..dim {
                    self.scratch_a[(r, c)] = v[(r, c)] * phase;
                }
            }
            self.scratch_a
                .matmul_into(&self.vdag, &mut self.slice_unitaries[t]);
        }

        // forward[t] = U_t · forward[t-1]
        self.forward[0].copy_from(&self.slice_unitaries[0]);
        for t in 1..self.num_slices {
            let (head, tail) = self.forward.split_at_mut(t);
            self.slice_unitaries[t].matmul_into(&head[t - 1], &mut tail[0]);
        }

        // backward[t] = backward[t+1] · U_{t+1}, starting from the identity.
        let last = self.num_slices - 1;
        self.backward[last].as_mut_slice().fill(C64::ZERO);
        for i in 0..dim {
            self.backward[last][(i, i)] = C64::ONE;
        }
        for t in (0..last).rev() {
            let (head, tail) = self.backward.split_at_mut(t + 1);
            tail[0].matmul_into(&self.slice_unitaries[t + 1], &mut head[t]);
        }
    }

    /// Computes the trace infidelity of a pulse against the configured target and
    /// its exact gradient (via the Daleckii–Krein divided-difference formula),
    /// storing the gradient in [`GrapeWorkspace::gradient`] and returning the
    /// infidelity. Performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if no target was set or the pulse shape does not match the workspace.
    pub fn fidelity_gradient(&mut self, pulse: &PulseSequence) -> f64 {
        assert!(
            self.target_dagger.is_some(),
            "set_target must be called before fidelity_gradient"
        );
        self.propagate(pulse);
        let dim = self.dim;
        let dim_f = self.qubit_dim;
        let dt = pulse.dt_ns();
        // audit:allow(unwrap): target_dagger is set earlier in this method
        let target_dagger = self.target_dagger.as_ref().expect("target set above");

        // overlap = Tr(V† U_total) / d, computed as Σ_ik V†[i,k]·U[k,i] in O(dim²).
        // audit:allow(unwrap): propagate ran on the line above and records every slice
        let total = self.forward.last().expect("at least one slice");
        let mut overlap = C64::ZERO;
        for i in 0..dim {
            for k in 0..dim {
                overlap += target_dagger[(i, k)] * total[(k, i)];
            }
        }
        overlap = overlap * (1.0 / dim_f);
        let infidelity = 1.0 - overlap.norm_sqr();
        let conj_overlap = overlap.conj();

        // --- exact gradient via the Daleckii–Krein formula ---------------------------
        // For slice t: U_total = backward[t] · U_t · forward[t-1], and
        //   ∂U_t/∂u_k = V (Γ ∘ (V† H_k V)) V†,
        // where Γ_ij is the divided difference of f(λ) = e^{-iΔtλ} at (λ_i, λ_j).
        // Writing M' = forward[t-1] · V_target† · backward[t] and P = V† M' V,
        //   Tr(V_target† ∂U_total/∂u_k) = Σ_ab H_k[a,b] · G[a,b]
        // with  G = conj(V) · (Pᵀ ∘ Γ) · Vᵀ,  which is independent of k. To stay in
        // plain matmul kernels, G is computed as conj(V · conj(Pᵀ ∘ Γ) · V†): the
        // conjugation folds into building T = conj(Pᵀ ∘ Γ) and into the final
        // contraction.
        for t in 0..self.num_slices {
            // m' = forward[t-1] · target† · backward[t]   (forward[-1] = identity)
            if t == 0 {
                target_dagger.matmul_into(&self.backward[0], &mut self.scratch_b);
            } else {
                self.forward[t - 1].matmul_into(target_dagger, &mut self.scratch_a);
                self.scratch_a
                    .matmul_into(&self.backward[t], &mut self.scratch_b);
            }
            let v = &self.slice_v[t];
            v.dagger_into(&mut self.vdag);
            // p = V† · m' · V
            self.vdag.matmul_into(&self.scratch_b, &mut self.scratch_a);
            self.scratch_a.matmul_into(v, &mut self.scratch_c);
            let p = &self.scratch_c;

            let lambdas = &self.slice_lambdas[t];
            let phases = &self.slice_phases[t];
            // T = conj(Pᵀ ∘ Γ), written into scratch_b.
            for i in 0..dim {
                for j in 0..dim {
                    let gamma = if (lambdas[i] - lambdas[j]).abs() < 1e-10 {
                        C64::new(0.0, -dt) * phases[i]
                    } else {
                        (phases[i] - phases[j]) * (1.0 / (lambdas[i] - lambdas[j]))
                    };
                    self.scratch_b[(j, i)] = (p[(i, j)] * gamma).conj();
                }
            }
            // conj(G) = V · T · V†
            v.matmul_into(&self.scratch_b, &mut self.scratch_a);
            self.scratch_a.matmul_into(&self.vdag, &mut self.scratch_c);
            let g_conj = &self.scratch_c;

            for (k, control) in self.controls.iter().enumerate() {
                let h_k = &control.operator;
                let mut contraction = C64::ZERO;
                for a in 0..dim {
                    for b in 0..dim {
                        let h_ab = h_k[(a, b)];
                        if h_ab.re != 0.0 || h_ab.im != 0.0 {
                            contraction += h_ab * g_conj[(a, b)].conj();
                        }
                    }
                }
                let dg = contraction / dim_f;
                let dfidelity = 2.0 * (conj_overlap * dg).re;
                self.gradient[k][t] = -dfidelity;
            }
        }

        infidelity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grape::fidelity_gradient;
    use vqc_sim::gates;

    #[test]
    fn workspace_gradient_matches_the_allocating_reference() {
        let device = DeviceModel::qubits_line(2);
        let target = gates::cx();
        let pulse = PulseSequence::seeded_guess(&device, 6, 0.5, 3);

        let reference = fidelity_gradient(&target, &device, &pulse);
        let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
        workspace.set_target(&device, &target);
        // Run twice through the same buffers: iteration two must not see leftovers.
        let _ = workspace.fidelity_gradient(&pulse);
        let infidelity = workspace.fidelity_gradient(&pulse);

        assert!((infidelity - reference.infidelity).abs() < 1e-12);
        for k in 0..device.num_controls() {
            for t in 0..pulse.num_slices() {
                assert!(
                    (workspace.gradient()[k][t] - reference.gradient[k][t]).abs() < 1e-12,
                    "control {k} slice {t}: workspace {} vs reference {}",
                    workspace.gradient()[k][t],
                    reference.gradient[k][t]
                );
            }
        }
    }

    #[test]
    fn workspace_propagation_matches_taylor_expm() {
        use vqc_linalg::expm::expm;
        let device = DeviceModel::qubits_line(1);
        let pulse = PulseSequence::seeded_guess(&device, 8, 0.5, 5);
        let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
        workspace.propagate(&pulse);
        let controls = device.control_hamiltonians();
        let drift = device.drift();
        for t in 0..pulse.num_slices() {
            let h = crate::propagate::slice_hamiltonian(&drift, &controls, &pulse, t);
            let taylor = expm(&h.scale(C64::new(0.0, -pulse.dt_ns())));
            assert!(
                workspace.slice_unitaries()[t].approx_eq(&taylor, 1e-12),
                "slice {t} diverges from the Taylor reference"
            );
        }
    }

    #[test]
    #[should_panic(expected = "set_target")]
    fn gradient_without_target_is_rejected() {
        let device = DeviceModel::qubits_line(1);
        let pulse = PulseSequence::seeded_guess(&device, 4, 0.5, 1);
        let mut workspace = GrapeWorkspace::new(&device, 4);
        workspace.fidelity_gradient(&pulse);
    }

    #[test]
    #[should_panic(expected = "slices")]
    fn mismatched_slice_count_is_rejected() {
        let device = DeviceModel::qubits_line(1);
        let pulse = PulseSequence::seeded_guess(&device, 4, 0.5, 1);
        let mut workspace = GrapeWorkspace::new(&device, 5);
        workspace.propagate(&pulse);
    }
}
