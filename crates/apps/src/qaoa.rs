//! QAOA MAXCUT circuit construction (Section 4.2).
//!
//! A depth-`p` QAOA circuit alternates `p` Cost-Optimization rounds (one ZZ rotation
//! per graph edge, parameterized by γᵢ) with `p` Mixing rounds (one X rotation per
//! qubit, parameterized by βᵢ), after an initial layer of Hadamards. The circuit
//! therefore has `2p` parameters ordered γ₀, β₀, γ₁, β₁, …, which makes it parameter
//! monotonic by construction.

use crate::graphs::Graph;
use vqc_circuit::{Circuit, ParamExpr};
use vqc_sim::{PauliOperator, PauliString};

/// Index of the Cost-Optimization (γ) parameter of round `round` in the flat parameter
/// vector.
pub fn gamma_index(round: usize) -> usize {
    2 * round
}

/// Index of the Mixing (β) parameter of round `round` in the flat parameter vector.
pub fn beta_index(round: usize) -> usize {
    2 * round + 1
}

/// Builds the QAOA MAXCUT circuit for a graph with `p` rounds.
///
/// The circuit uses one qubit per graph node and `2p` variational parameters.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn qaoa_circuit(graph: &Graph, p: usize) -> Circuit {
    assert!(p > 0, "QAOA needs at least one round");
    let n = graph.num_nodes();
    let mut circuit = Circuit::new(n);
    for q in 0..n {
        circuit.h(q);
    }
    for round in 0..p {
        // Cost-Optimization: exp(-i γ Z_a Z_b) per edge, realized as a ZZ rotation by
        // 2γ in the circuit's Rzz convention.
        for (a, b) in graph.edges() {
            circuit.rzz_expr(a, b, ParamExpr::theta(gamma_index(round)).scaled(2.0));
        }
        // Mixing: exp(-i β X_q) per qubit, i.e. an Rx rotation by 2β.
        for q in 0..n {
            circuit.rx_expr(q, ParamExpr::theta(beta_index(round)).scaled(2.0));
        }
    }
    circuit
}

/// The MAXCUT cost Hamiltonian `C = Σ_(a,b)∈E (1 − Z_a Z_b)/2`, whose expectation value
/// on a computational-basis state equals the cut size of that assignment.
pub fn maxcut_hamiltonian(graph: &Graph) -> PauliOperator {
    let n = graph.num_nodes();
    let mut h = PauliOperator::new(n);
    let num_edges = graph.num_edges() as f64;
    if num_edges > 0.0 {
        h.add_term(0.5 * num_edges, PauliString::identity(n));
        for (a, b) in graph.edges() {
            h.add_term(-0.5, PauliString::zz(n, a, b));
        }
    }
    h
}

/// A description of one QAOA benchmark instance from Table 3 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QaoaBenchmark {
    /// Number of graph nodes (= circuit width).
    pub num_nodes: usize,
    /// Number of QAOA rounds `p`.
    pub p: usize,
    /// Whether the underlying graph is 3-regular (`true`) or Erdős–Rényi (`false`).
    pub three_regular: bool,
    /// Seed used to sample the random graph.
    pub seed: u64,
}

impl QaoaBenchmark {
    /// Human-readable benchmark name, e.g. `"3-Regular N=6 p=3"`.
    pub fn name(&self) -> String {
        let family = if self.three_regular {
            "3-Regular"
        } else {
            "Erdos-Renyi"
        };
        format!("{family} N={} p={}", self.num_nodes, self.p)
    }

    /// Samples the benchmark's graph.
    pub fn graph(&self) -> Graph {
        if self.three_regular {
            Graph::three_regular(self.num_nodes, self.seed)
                // audit:allow(unwrap): 3-regular graphs exist for every benchmarked (even) node count
                .expect("3-regular graphs exist for the benchmarked sizes")
        } else {
            Graph::erdos_renyi(self.num_nodes, 0.5, self.seed)
        }
    }

    /// Builds the benchmark's circuit.
    pub fn circuit(&self) -> Circuit {
        qaoa_circuit(&self.graph(), self.p)
    }
}

/// The 32 QAOA benchmarks of Table 3: `N ∈ {6, 8}`, `p ∈ 1..=8`, for both graph
/// families, with fixed seeds for reproducibility.
pub fn table3_benchmarks() -> Vec<QaoaBenchmark> {
    let mut benchmarks = Vec::new();
    for &num_nodes in &[6usize, 8] {
        for &three_regular in &[true, false] {
            for p in 1..=8 {
                benchmarks.push(QaoaBenchmark {
                    num_nodes,
                    p,
                    three_regular,
                    seed: 17 + num_nodes as u64,
                });
            }
        }
    }
    benchmarks
}

/// Returns `true` if the Hamiltonian expectation of a basis state equals its cut size —
/// used as a sanity check in tests and examples.
pub fn cut_matches_expectation(graph: &Graph, assignment: usize) -> bool {
    use vqc_circuit::Circuit;
    use vqc_sim::StateVector;
    let n = graph.num_nodes();
    let mut prep = Circuit::new(n);
    for q in 0..n {
        if (assignment >> (n - 1 - q)) & 1 == 1 {
            prep.x(q);
        }
    }
    let state = StateVector::from_circuit(&prep);
    let expectation = maxcut_hamiltonian(graph).expectation(&state);
    (expectation - graph.cut_size(assignment) as f64).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_shape_matches_qaoa_structure() {
        let graph = Graph::three_regular(6, 3).unwrap();
        let p = 3;
        let circuit = qaoa_circuit(&graph, p);
        assert_eq!(circuit.num_qubits(), 6);
        assert_eq!(circuit.num_parameters(), 2 * p);
        // Gate count: 6 H + p * (9 edges rzz + 6 rx).
        assert_eq!(circuit.len(), 6 + p * (graph.num_edges() + 6));
        assert!(circuit.is_parameter_monotonic());
    }

    #[test]
    fn parameterized_fraction_matches_paper_range() {
        // The paper reports that 15–28 % of QAOA gates are parameterized, measured on
        // circuits that were optimized *and* mapped to nearest-neighbour connectivity
        // (mapping adds SWAP chains, which dilutes the fraction). QAOA is in any case
        // much more parameter-dense than VQE-UCCSD (5–8 %), which is the property the
        // strict-vs-flexible comparison rests on.
        for p in [1usize, 4, 8] {
            let graph = Graph::three_regular(8, 5).unwrap();
            let optimized = vqc_circuit::passes::optimize(&qaoa_circuit(&graph, p));
            let mapped = vqc_circuit::mapping::map_to_topology(
                &optimized,
                &vqc_circuit::Topology::grid(2, 4),
            )
            .unwrap();
            let fraction = mapped.circuit.parameterized_fraction();
            assert!(
                (0.10..=0.40).contains(&fraction),
                "p={p}: fraction {fraction}"
            );
            // QAOA stays far more parameter-dense than the UCCSD benchmarks.
            assert!(fraction > 0.10);
        }
    }

    #[test]
    fn maxcut_hamiltonian_reproduces_cut_sizes() {
        let graph = Graph::clique(4);
        for assignment in 0..16 {
            assert!(cut_matches_expectation(&graph, assignment));
        }
    }

    #[test]
    fn maxcut_expectation_is_bounded_by_maximum_cut() {
        use vqc_sim::StateVector;
        let graph = Graph::erdos_renyi(5, 0.5, 9);
        let h = maxcut_hamiltonian(&graph);
        let circuit = qaoa_circuit(&graph, 2).bind(&[0.3, 0.7, -0.2, 0.5]);
        let state = StateVector::from_circuit(&circuit);
        let expectation = h.expectation(&state);
        assert!(expectation <= graph.max_cut() as f64 + 1e-9);
        assert!(expectation >= 0.0 - 1e-9);
    }

    #[test]
    fn table3_has_32_benchmarks() {
        let benchmarks = table3_benchmarks();
        assert_eq!(benchmarks.len(), 32);
        assert!(benchmarks.iter().any(|b| b.name() == "3-Regular N=6 p=1"));
        assert!(benchmarks.iter().any(|b| b.name() == "Erdos-Renyi N=8 p=8"));
        // Every benchmark's circuit has the right width and parameter count.
        for b in benchmarks.iter().filter(|b| b.p <= 2) {
            let c = b.circuit();
            assert_eq!(c.num_qubits(), b.num_nodes);
            assert_eq!(c.num_parameters(), 2 * b.p);
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_is_rejected() {
        qaoa_circuit(&Graph::clique(3), 0);
    }
}
