//! Random graph generators for the QAOA MAXCUT benchmarks.
//!
//! The paper benchmarks two families of random graphs on 6 and 8 nodes: 3-regular
//! graphs (every node has exactly three neighbours) and Erdős–Rényi graphs (every edge
//! present independently with probability 1/2). Figure 2 additionally uses the 4-node
//! clique.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Error returned when a random graph with the requested structure cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError {
    /// Explanation of what went wrong.
    message: String,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for GraphError {}

/// An undirected simple graph on `num_nodes` nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    num_nodes: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl Graph {
    /// Creates a graph from an explicit edge list (duplicates and orientation ignored).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= num_nodes` or is a self-loop.
    pub fn new(num_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut set = BTreeSet::new();
        for &(a, b) in edges {
            assert!(
                a < num_nodes && b < num_nodes,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loops are not allowed");
            set.insert((a.min(b), a.max(b)));
        }
        Graph {
            num_nodes,
            edges: set,
        }
    }

    /// The complete graph on `n` nodes (the 4-node clique is Figure 2's workload).
    pub fn clique(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Graph::new(n, &edges)
    }

    /// A simple cycle on `n` nodes.
    pub fn cycle(n: usize) -> Self {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::new(n, &edges)
    }

    /// A random 3-regular graph via the configuration model with rejection.
    ///
    /// # Errors
    ///
    /// Returns an error if `3·num_nodes` is odd, `num_nodes < 4`, or no simple 3-regular
    /// graph was found within the retry budget (practically impossible for the sizes
    /// used here).
    pub fn three_regular(num_nodes: usize, seed: u64) -> Result<Self, GraphError> {
        Graph::random_regular(num_nodes, 3, seed)
    }

    /// A random `degree`-regular graph via the configuration model with rejection.
    ///
    /// # Errors
    ///
    /// Returns an error if `degree·num_nodes` is odd, `degree >= num_nodes`, or the
    /// retry budget is exhausted.
    pub fn random_regular(num_nodes: usize, degree: usize, seed: u64) -> Result<Self, GraphError> {
        if degree >= num_nodes {
            return Err(GraphError {
                message: format!("cannot build a {degree}-regular graph on {num_nodes} nodes"),
            });
        }
        if !(degree * num_nodes).is_multiple_of(2) {
            return Err(GraphError {
                message: format!(
                    "a {degree}-regular graph on {num_nodes} nodes would need an odd number of edge endpoints"
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        'attempt: for _ in 0..10_000 {
            let mut stubs: Vec<usize> = (0..num_nodes).flat_map(|v| vec![v; degree]).collect();
            stubs.shuffle(&mut rng);
            let mut edges = BTreeSet::new();
            for pair in stubs.chunks(2) {
                let (a, b) = (pair[0], pair[1]);
                if a == b {
                    continue 'attempt;
                }
                if !edges.insert((a.min(b), a.max(b))) {
                    continue 'attempt;
                }
            }
            return Ok(Graph { num_nodes, edges });
        }
        Err(GraphError {
            message: format!("failed to sample a {degree}-regular graph on {num_nodes} nodes"),
        })
    }

    /// An Erdős–Rényi graph where every edge is present independently with probability
    /// `edge_probability` (the paper uses 1/2).
    pub fn erdos_renyi(num_nodes: usize, edge_probability: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = BTreeSet::new();
        for a in 0..num_nodes {
            for b in a + 1..num_nodes {
                if rng.gen_bool(edge_probability.clamp(0.0, 1.0)) {
                    edges.insert((a, b));
                }
            }
        }
        Graph { num_nodes, edges }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over edges as `(low, high)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Degree of a node.
    pub fn degree(&self, node: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == node || b == node)
            .count()
    }

    /// Size of the cut induced by an assignment of nodes to two sides, given as a
    /// bitmask (bit `i` = side of node `i`, with node 0 the most-significant bit to
    /// match the simulator's basis-state indexing).
    pub fn cut_size(&self, assignment: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| {
                let side_a = (assignment >> (self.num_nodes - 1 - a)) & 1;
                let side_b = (assignment >> (self.num_nodes - 1 - b)) & 1;
                side_a != side_b
            })
            .count()
    }

    /// The maximum cut size, by brute force (fine for ≤ 20 nodes).
    pub fn max_cut(&self) -> usize {
        (0..(1usize << self.num_nodes))
            .map(|assignment| self.cut_size(assignment))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_edge_count() {
        let g = Graph::clique(4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.max_cut(), 4);
    }

    #[test]
    fn cycle_structure() {
        let g = Graph::cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in 0..6 {
            assert_eq!(g.degree(v), 2);
        }
        // Even cycles are bipartite: max cut equals the edge count.
        assert_eq!(g.max_cut(), 6);
    }

    #[test]
    fn three_regular_graphs_are_regular() {
        for seed in 0..5 {
            for n in [4usize, 6, 8] {
                let g = Graph::three_regular(n, seed).unwrap();
                assert_eq!(g.num_edges(), 3 * n / 2);
                for v in 0..n {
                    assert_eq!(g.degree(v), 3, "node {v} of n={n}, seed {seed}");
                }
            }
        }
    }

    #[test]
    fn three_regular_rejects_odd_totals() {
        assert!(Graph::three_regular(5, 0).is_err());
        assert!(Graph::three_regular(3, 0).is_err());
    }

    #[test]
    fn erdos_renyi_is_reproducible() {
        let a = Graph::erdos_renyi(8, 0.5, 42);
        let b = Graph::erdos_renyi(8, 0.5, 42);
        let c = Graph::erdos_renyi(8, 0.5, 43);
        assert_eq!(a, b);
        assert!(a != c || a.num_edges() == c.num_edges());
        // Probability 1 gives the clique, probability 0 the empty graph.
        assert_eq!(Graph::erdos_renyi(5, 1.0, 0).num_edges(), 10);
        assert_eq!(Graph::erdos_renyi(5, 0.0, 0).num_edges(), 0);
    }

    #[test]
    fn cut_size_counts_crossing_edges() {
        // Path 0-1-2 (edges (0,1),(1,2)); put node 1 alone on one side -> cut 2.
        let g = Graph::new(3, &[(0, 1), (1, 2)]);
        // Assignment bits: node0=0, node1=1, node2=0 -> 0b010.
        assert_eq!(g.cut_size(0b010), 2);
        assert_eq!(g.cut_size(0b000), 0);
        assert_eq!(g.max_cut(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_are_rejected() {
        Graph::new(3, &[(1, 1)]);
    }
}
