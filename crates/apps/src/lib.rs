//! Variational benchmark applications: VQE-UCCSD and QAOA MAXCUT.
//!
//! The paper evaluates its compilation strategies on two families of variational
//! circuits (Section 4):
//!
//! * **VQE with the UCCSD ansatz** for five molecules (H₂, LiH, BeH₂, NaH, H₂O) —
//!   generated here by [`uccsd`]. The generator reproduces the *structure* the
//!   compilation strategies exploit: Trotterized excitation blocks where each
//!   variational parameter θᵢ appears in a contiguous group of Pauli-evolution
//!   subcircuits (parameter monotonicity), with parameterized Rz gates making up only a
//!   few percent of all gates.
//! * **QAOA MAXCUT** on 3-regular and Erdős–Rényi random graphs ([`qaoa`], [`graphs`]),
//!   with `p` alternating Cost/Mixing rounds and `2p` parameters.
//!
//! The crate also provides the classical half of the variational loop: a derivative-free
//! [Nelder–Mead](optimizer::NelderMead) optimizer and end-to-end [`variational`] drivers
//! that evaluate circuits on the `vqc-sim` state-vector simulator.
//!
//! # Example
//!
//! ```
//! use vqc_apps::graphs::Graph;
//! use vqc_apps::qaoa;
//!
//! let graph = Graph::three_regular(6, 7).unwrap();
//! let circuit = qaoa::qaoa_circuit(&graph, 2);
//! assert_eq!(circuit.num_qubits(), 6);
//! assert_eq!(circuit.num_parameters(), 4); // 2p
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graphs;
pub mod molecules;
pub mod optimizer;
pub mod qaoa;
pub mod uccsd;
pub mod variational;
