//! `vqc-serve` — run the compilation service as a TCP server.
//!
//! ```text
//! vqc-serve [ADDRESS]
//! ```
//!
//! `ADDRESS` (or `VQC_LISTEN`, default `127.0.0.1:7878`) is the listen
//! address. The runtime behind the listener honors the usual knobs:
//! `VQC_WORKERS`, `VQC_QUEUE_DEPTH`, `VQC_BACKPRESSURE`, `VQC_CACHE_BLOCKS`,
//! `VQC_EVICTION`; the transport adds `VQC_MAX_FRAME` (frame-size bound in
//! bytes) and `VQC_MAX_CONNS` (simultaneous connections). Telemetry honors
//! `VQC_TELEMETRY` (set `0` to disable), `VQC_METRICS_INTERVAL` (aggregator
//! period in seconds, default 1), `VQC_METRICS_DUMP` (append one JSON line
//! per snapshot to this path), and `VQC_TRACE_CAPACITY` (lifecycle trace ring
//! size, default 4096) — watch it live with `vqc-top`. `VQC_EFFORT`
//! (`fast` — the default, `standard`, `full`) picks the GRAPE effort;
//! `VQC_SNAPSHOT` names a cache snapshot to warm-start from and to write back
//! on graceful shutdown.
//!
//! The server runs until a client sends the `Shutdown` request (see
//! `vqc-submit --shutdown`) or the process is killed; shutdown drains every
//! admitted submission first.

use std::sync::Arc;
use vqc_core::CompilerOptions;
use vqc_runtime::{CompilationRuntime, RuntimeOptions};
use vqc_transport::{Server, ServerOptions, DEFAULT_LISTEN};

fn compiler_options() -> CompilerOptions {
    match std::env::var("VQC_EFFORT")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "full" | "paper" => CompilerOptions::paper(),
        "standard" | "std" => CompilerOptions::standard(),
        _ => CompilerOptions::fast(),
    }
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("VQC_LISTEN").ok())
        .unwrap_or_else(|| DEFAULT_LISTEN.to_string());
    let snapshot = std::env::var("VQC_SNAPSHOT").ok();
    let runtime_options = RuntimeOptions::default();
    let runtime = match &snapshot {
        Some(path) if std::path::Path::new(path).exists() => {
            match CompilationRuntime::with_warm_start(compiler_options(), runtime_options, path) {
                Ok(runtime) => {
                    eprintln!("vqc-serve: warm-started cache from {path}");
                    runtime
                }
                Err(error) => {
                    eprintln!("vqc-serve: ignoring unreadable snapshot {path}: {error}");
                    CompilationRuntime::new(compiler_options(), RuntimeOptions::default())
                }
            }
        }
        _ => CompilationRuntime::new(compiler_options(), runtime_options),
    };
    let runtime = Arc::new(runtime);

    let server = match Server::bind(&addr, Arc::clone(&runtime), ServerOptions::default()) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("vqc-serve: cannot bind {addr}: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "vqc-serve: listening on {} ({} workers); send the Shutdown request to stop",
        server.local_addr(),
        runtime.workers(),
    );
    server.wait();

    let metrics = runtime.metrics();
    eprintln!(
        "vqc-serve: drained; {} submissions, {} unique compilations, {} cache hits, {} canceled",
        metrics.submissions,
        metrics.unique_compilations,
        metrics.cache.hits,
        metrics.canceled_submissions,
    );
    for (client, slice) in runtime.client_metrics_snapshot() {
        eprintln!(
            "vqc-serve:   client {client}: {} submitted, {} compiled, {} hits, {:.3}s queued",
            slice.submissions, slice.compilations, slice.cache_hits, slice.queue_seconds,
        );
    }
    if let Some(path) = snapshot {
        match runtime.save_snapshot(&path) {
            Ok(()) => eprintln!("vqc-serve: cache snapshot written to {path}"),
            Err(error) => eprintln!("vqc-serve: snapshot write failed: {error}"),
        }
    }
}
