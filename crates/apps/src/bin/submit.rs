//! `vqc-submit` — submit a compilation workload to a running `vqc-serve`.
//!
//! ```text
//! vqc-submit [ADDRESS] [--iterations=N] [--priority=low|normal|high]
//!            [--seed=S] [--stats] [--trace-out[=PATH]] [--shutdown]
//! ```
//!
//! Connects to `ADDRESS` (or `VQC_LISTEN`, default `127.0.0.1:7878`), submits
//! a QAOA MAXCUT variational workload — one 3-regular-graph circuit at
//! `--iterations` parameter bindings, the paper's repeated-block shape — and
//! streams completion events as the server's workers finish each iteration.
//! `--stats` additionally prints the server's global metrics and this client's
//! slice; `--shutdown` asks the server to drain and stop after the workload.
//!
//! `--trace-out[=PATH]` turns the run into a cross-process causal trace: the
//! submission carries a client-assigned trace id, the client stamps its own
//! submit/await spans locally, fetches the server's lifecycle trace after the
//! report, and merges both — server timestamps mapped onto the client's clock
//! via the handshake's offset estimate — into one Chrome `trace_event` JSON
//! file (default `vqc-causal-trace.json`, load at `chrome://tracing` or
//! <https://ui.perfetto.dev>).

use vqc_apps::graphs::Graph;
use vqc_apps::qaoa::qaoa_circuit;
use vqc_core::Strategy;
use vqc_runtime::Priority;
use vqc_transport::{
    merged_chrome_trace, Client, ClientOptions, ClientSpan, JobEvent, JobUpdate, RemoteError,
    SubmitPayload, DEFAULT_LISTEN,
};

struct Args {
    addr: String,
    iterations: usize,
    priority: Priority,
    seed: u64,
    stats: bool,
    trace_out: Option<String>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: std::env::var("VQC_LISTEN").unwrap_or_else(|_| DEFAULT_LISTEN.to_string()),
        iterations: 3,
        priority: Priority::NORMAL,
        seed: 20,
        stats: false,
        trace_out: None,
        shutdown: false,
    };
    for arg in std::env::args().skip(1) {
        if let Some(value) = arg.strip_prefix("--iterations=") {
            args.iterations = value
                .parse()
                .map_err(|_| format!("bad --iterations value `{value}`"))?;
        } else if let Some(value) = arg.strip_prefix("--priority=") {
            args.priority = match value {
                "low" => Priority::LOW,
                "normal" => Priority::NORMAL,
                "high" => Priority::HIGH,
                other => return Err(format!("bad --priority value `{other}`")),
            };
        } else if let Some(value) = arg.strip_prefix("--seed=") {
            args.seed = value
                .parse()
                .map_err(|_| format!("bad --seed value `{value}`"))?;
        } else if arg == "--stats" {
            args.stats = true;
        } else if arg == "--trace-out" {
            args.trace_out = Some(String::from("vqc-causal-trace.json"));
        } else if let Some(path) = arg.strip_prefix("--trace-out=") {
            args.trace_out = Some(path.to_string());
        } else if arg == "--shutdown" {
            args.shutdown = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            args.addr = arg;
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), RemoteError> {
    let client = Client::connect(
        &args.addr as &str,
        ClientOptions::default()
            .with_name("vqc-submit")
            .with_priority(args.priority),
    )?;
    eprintln!(
        "vqc-submit: connected to {} as client {}",
        args.addr,
        client.client_id()
    );

    // The trace id rides the Submit frame so the server's lifecycle events can
    // be correlated with this process; the process id is unique enough for a
    // single causal-trace capture.
    let trace_id = u64::from(std::process::id());
    let mut client_spans: Vec<ClientSpan> = Vec::new();

    if args.iterations > 0 {
        let graph = Graph::three_regular(6, args.seed)
            .map_err(|e| RemoteError::Protocol(format!("graph generation failed: {e}")))?;
        let circuit = qaoa_circuit(&graph, 1);
        let parameter_sets: Vec<Vec<f64>> = (0..args.iterations)
            .map(|i| vec![0.35 + 0.11 * i as f64, 0.80 - 0.07 * i as f64])
            .collect();
        let payload = SubmitPayload::Iterations {
            circuit,
            parameter_sets,
            strategy: Strategy::StrictPartial,
        };
        let submit_micros = client.now_micros();
        let job = if args.trace_out.is_some() {
            client.submit_traced(payload, None, Some(trace_id))?
        } else {
            client.submit(payload)?
        };
        client_spans.push(ClientSpan {
            name: String::from("submit"),
            micros: submit_micros,
            span_micros: 0,
        });
        loop {
            match job.next_update()? {
                JobUpdate::Event(JobEvent::Queued) => eprintln!("vqc-submit: queued"),
                JobUpdate::Event(JobEvent::Running { jobs }) => {
                    eprintln!("vqc-submit: running ({jobs} iterations)")
                }
                JobUpdate::Event(JobEvent::JobDone {
                    job,
                    ok,
                    pulse_duration_ns,
                }) => {
                    client_spans.push(ClientSpan {
                        name: format!("job-done-received-{job}"),
                        micros: client.now_micros(),
                        span_micros: 0,
                    });
                    if ok {
                        eprintln!(
                            "vqc-submit: iteration {job} done, pulse {pulse_duration_ns:.1} ns"
                        );
                    } else {
                        eprintln!("vqc-submit: iteration {job} failed");
                    }
                }
                JobUpdate::Event(event) => eprintln!("vqc-submit: event {event:?}"),
                JobUpdate::Report(results) => {
                    client_spans.push(ClientSpan {
                        name: String::from("await-report"),
                        micros: submit_micros,
                        span_micros: client.now_micros().saturating_sub(submit_micros).max(1),
                    });
                    let ok = results.iter().filter(|r| r.is_ok()).count();
                    eprintln!(
                        "vqc-submit: report — {ok}/{} iterations compiled",
                        results.len()
                    );
                    if let Some(Ok(report)) = results.first() {
                        eprintln!(
                            "vqc-submit: pulse {:.1} ns vs gate-based {:.1} ns ({:.2}x speedup), {} blocks",
                            report.pulse_duration_ns,
                            report.gate_based_duration_ns,
                            report.pulse_speedup(),
                            report.num_blocks,
                        );
                    }
                    break;
                }
                JobUpdate::Rejected(reason) => {
                    eprintln!("vqc-submit: rejected — {reason}");
                    break;
                }
            }
        }
    }

    if let Some(path) = &args.trace_out {
        let events = client.trace()?;
        let offset = client.clock_offset_micros();
        let json = merged_chrome_trace(&client_spans, &events, offset);
        std::fs::write(path, &json)
            .map_err(|e| RemoteError::Protocol(format!("cannot write trace file {path}: {e}")))?;
        eprintln!(
            "vqc-submit: wrote merged causal trace to {path} ({} server events, trace id {trace_id}, clock offset {offset}µs)",
            events.len(),
        );
    }

    if args.stats {
        let stats = client.stats()?;
        eprintln!(
            "vqc-submit: server totals — {} submissions, {} unique compilations, {} hits / {} misses, {} coalesced",
            stats.runtime.submissions,
            stats.runtime.unique_compilations,
            stats.runtime.cache.hits,
            stats.runtime.cache.misses,
            stats.runtime.coalesced_waits,
        );
        eprintln!(
            "vqc-submit: this client — {} submitted, {} compiled, {} hits, {} coalesced, {:.3}s queued",
            stats.client.submissions,
            stats.client.compilations,
            stats.client.cache_hits,
            stats.client.coalesced_waits,
            stats.client.queue_seconds,
        );
    }
    if args.shutdown {
        eprintln!("vqc-submit: requesting server shutdown");
        client.shutdown_server()?;
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("vqc-submit: {message}");
            eprintln!(
                "usage: vqc-submit [ADDRESS] [--iterations=N] [--priority=low|normal|high] [--seed=S] [--stats] [--trace-out[=PATH]] [--shutdown]"
            );
            std::process::exit(2);
        }
    };
    if let Err(error) = run(&args) {
        eprintln!("vqc-submit: {error}");
        std::process::exit(1);
    }
}
