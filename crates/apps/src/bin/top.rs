//! `vqc-top` — live dashboard over a running `vqc-serve`.
//!
//! ```text
//! vqc-top [ADDRESS] [--once] [--json] [--dump-trace[=PATH]]
//! ```
//!
//! Connects to `ADDRESS` (or `VQC_LISTEN`, default `127.0.0.1:7878`), issues
//! the `Watch` request, and redraws a plain-ANSI dashboard on every server
//! metrics tick: worker utilization, queue depths by priority class, cache hit
//! ratio, per-class latency percentiles, and the most recent lifecycle events.
//! Refresh cadence is the server's `VQC_METRICS_INTERVAL`, not a client-side
//! timer.
//!
//! `--once` renders a single snapshot and exits (CI smoke tests); `--json`
//! prints each snapshot as one JSON line instead of the dashboard;
//! `--dump-trace[=PATH]` skips the dashboard entirely, fetches the server's
//! lifecycle trace ring, and writes it as Chrome `trace_event` JSON (load it
//! at `chrome://tracing` or <https://ui.perfetto.dev>) — default path
//! `vqc-trace.json`.

use vqc_runtime::{
    chrome_trace_json, MetricsSnapshot, TraceEvent, TraceStage, PRIORITY_CLASS_NAMES,
};
use vqc_transport::{Client, ClientOptions, RemoteError, DEFAULT_LISTEN};

struct Args {
    addr: String,
    once: bool,
    json: bool,
    dump_trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: std::env::var("VQC_LISTEN").unwrap_or_else(|_| DEFAULT_LISTEN.to_string()),
        once: false,
        json: false,
        dump_trace: None,
    };
    for arg in std::env::args().skip(1) {
        if arg == "--once" {
            args.once = true;
        } else if arg == "--json" {
            args.json = true;
        } else if arg == "--dump-trace" {
            args.dump_trace = Some(String::from("vqc-trace.json"));
        } else if let Some(path) = arg.strip_prefix("--dump-trace=") {
            args.dump_trace = Some(path.to_string());
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            args.addr = arg;
        }
    }
    Ok(args)
}

/// Renders a duration in the most readable unit for its magnitude.
fn fmt_duration(seconds: f64) -> String {
    if seconds <= 0.0 {
        String::from("-")
    } else if seconds < 1e-3 {
        format!("{:.0}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

fn utilization_bar(ratio: f64, width: usize) -> String {
    let filled = ((ratio.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut bar = String::with_capacity(width);
    for i in 0..width {
        bar.push(if i < filled { '#' } else { '.' });
    }
    bar
}

/// One-character severity glyph for the event tail. The match is exhaustive on
/// purpose — `vqc-audit`'s `trace_stage` lint checks that every [`TraceStage`]
/// variant is handled here, so a new lifecycle stage cannot silently render as
/// a blank column.
fn stage_glyph(stage: TraceStage) -> char {
    match stage {
        TraceStage::Submitted => '+',
        TraceStage::Admitted => '>',
        TraceStage::Dispatched => '~',
        TraceStage::CompileStart => 'c',
        TraceStage::CacheHit => '=',
        TraceStage::Compiled => 'C',
        TraceStage::JobDone => 'j',
        TraceStage::Report => 'R',
        TraceStage::Canceled => 'x',
        TraceStage::Shed => '!',
        TraceStage::LockHold => 'L',
        TraceStage::Phase => 'p',
    }
}

fn render(addr: &str, snapshot: &MetricsSnapshot, events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "vqc-top — {addr}   uptime {:.1}s   snapshot #{}\n\n",
        snapshot.uptime_seconds, snapshot.seq
    ));
    out.push_str(&format!(
        "workers   {:>2}/{:<2} busy [{}] {:>5.1}%\n",
        snapshot.busy_workers,
        snapshot.workers,
        utilization_bar(snapshot.worker_utilization(), 24),
        snapshot.worker_utilization() * 100.0,
    ));
    let queued: u64 = snapshot.queued_by_class.iter().sum();
    out.push_str(&format!(
        "queue     {queued} queued (low {} / normal {} / high {})   {} outstanding   {} ready tasks\n",
        snapshot.queued_by_class[0],
        snapshot.queued_by_class[1],
        snapshot.queued_by_class[2],
        snapshot.outstanding,
        snapshot.ready_tasks,
    ));
    out.push_str(&format!(
        "submits   {} total   {} completed   {} shed   {} rejected   {} canceled\n",
        snapshot.submissions,
        snapshot.completed,
        snapshot.shed,
        snapshot.rejected,
        snapshot.canceled,
    ));
    out.push_str(&format!(
        "cache     {:.1}% hits ({}/{})   {} entries   {} evictions   {} unique compiles   {} coalesced\n",
        snapshot.cache_hit_ratio() * 100.0,
        snapshot.cache_hits,
        snapshot.cache_hits + snapshot.cache_misses,
        snapshot.cache_entries,
        snapshot.cache_evictions,
        snapshot.unique_compilations,
        snapshot.coalesced_waits,
    ));
    let warm = &snapshot.warm_start;
    out.push_str(&format!(
        "seeding   {} table hits / {} misses   {} seeds   {} memo hits / {} misses   {} seeded / {} cold iters\n\n",
        warm.table_hits,
        warm.table_misses,
        snapshot.seed_entries,
        warm.memo_hits,
        warm.memo_misses,
        warm.seeded_iterations,
        warm.cold_iterations,
    ));

    if !snapshot.phases.is_empty() {
        out.push_str("phases                          share    count      p50\n");
        for phase in &snapshot.phases {
            out.push_str(&format!(
                "  {:<22} [{}] {:>5.1}% {:>8} {:>8}\n",
                phase.name,
                utilization_bar(phase.share, 10),
                phase.share * 100.0,
                phase.histogram.count,
                fmt_duration(phase.histogram.p50()),
            ));
        }
        if snapshot.jacobi_sweeps > 0 {
            out.push_str(&format!(
                "  {} Jacobi sweeps across all eigendecompositions\n",
                snapshot.jacobi_sweeps
            ));
        }
        out.push('\n');
    }

    out.push_str("latency              count      p50      p95      p99\n");
    for class in &snapshot.classes {
        let name = PRIORITY_CLASS_NAMES
            .get(class.class as usize)
            .copied()
            .unwrap_or("?");
        if class.queue_wait.count > 0 {
            out.push_str(&format!(
                "  {name:<7} queue     {:>6} {:>8} {:>8} {:>8}\n",
                class.queue_wait.count,
                fmt_duration(class.queue_wait.p50()),
                fmt_duration(class.queue_wait.p95()),
                fmt_duration(class.queue_wait.p99()),
            ));
        }
        if class.submit_to_report.count > 0 {
            out.push_str(&format!(
                "  {name:<7} e2e       {:>6} {:>8} {:>8} {:>8}\n",
                class.submit_to_report.count,
                fmt_duration(class.submit_to_report.p50()),
                fmt_duration(class.submit_to_report.p95()),
                fmt_duration(class.submit_to_report.p99()),
            ));
        }
    }
    if snapshot.classes.iter().all(|c| c.queue_wait.count == 0)
        && snapshot
            .classes
            .iter()
            .all(|c| c.submit_to_report.count == 0)
    {
        out.push_str("  (no completed submissions yet)\n");
    }

    if !events.is_empty() {
        out.push_str("\nrecent events");
        if snapshot.trace_dropped > 0 {
            out.push_str(&format!("   ({} older dropped)", snapshot.trace_dropped));
        }
        out.push('\n');
        for event in events.iter().rev().take(8).rev() {
            out.push_str(&format!(
                "  {:>12.3}ms {} sub {:<4} {:<13} {}\n",
                event.micros as f64 / 1e3,
                stage_glyph(event.stage),
                event.submission,
                event.stage.name(),
                match event.client {
                    Some(client) => format!("client {client}"),
                    None => String::new(),
                },
            ));
        }
    }
    out
}

fn dump_trace(client: &Client, path: &str) -> Result<(), RemoteError> {
    let events = client.trace()?;
    let json = chrome_trace_json(&events);
    std::fs::write(path, &json)
        .map_err(|e| RemoteError::Protocol(format!("cannot write trace file {path}: {e}")))?;
    eprintln!("vqc-top: wrote {} trace events to {path}", events.len());
    Ok(())
}

fn run(args: &Args) -> Result<(), RemoteError> {
    let client = Client::connect(
        &args.addr as &str,
        ClientOptions::default().with_name("vqc-top"),
    )?;

    if let Some(path) = &args.dump_trace {
        return dump_trace(&client, path);
    }

    let ticks = client.watch()?;
    loop {
        let snapshot = match ticks.recv() {
            Ok(snapshot) => snapshot,
            // Server drained or the connection closed: the stream is over.
            Err(_) => return Ok(()),
        };
        if args.json {
            println!("{}", snapshot.to_json_line());
        } else {
            // Lifecycle tail for the dashboard; best-effort (an empty list is
            // rendered as no section, and a server without telemetry returns
            // an empty ring anyway).
            let events = client.trace().unwrap_or_default();
            if !args.once {
                // Home the cursor and clear: a plain-ANSI refresh, no TUI.
                print!("\x1b[H\x1b[2J");
            }
            print!("{}", render(&args.addr, &snapshot, &events));
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        if args.once {
            return Ok(());
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("vqc-top: {message}");
            eprintln!("usage: vqc-top [ADDRESS] [--once] [--json] [--dump-trace[=PATH]]");
            std::process::exit(2);
        }
    };
    if let Err(error) = run(&args) {
        eprintln!("vqc-top: {error}");
        std::process::exit(1);
    }
}
