//! `vqc-report` — replay `VQC_METRICS_DUMP` metrics journals into a latency /
//! phase-share report, optionally comparing two runs as a regression gate.
//!
//! ```text
//! vqc-report BASELINE.jsonl [CANDIDATE.jsonl]
//!            [--max-p99-regression=PCT] [--max-share-drift=POINTS]
//!            [--min-samples=N]
//! ```
//!
//! A journal is the JSON-lines file the server appends when started with
//! `VQC_METRICS_DUMP=PATH` (the same schema `vqc-top --json` prints). Counters
//! in the journal are cumulative, so the *last* line is the run's terminal
//! state; `vqc-report` summarizes it: per-class queue-wait and submit-to-report
//! p50/p95/p99, the compile-phase share breakdown from the armed profiler, and
//! warm-start effectiveness (seeded-iteration fraction, table and memo hit
//! rates).
//!
//! With a second journal the report becomes a comparison — per-class quantile
//! deltas, phase-share drift in percentage points, warm-start deltas — and a
//! CI gate: the process exits nonzero when, for any class with at least
//! `--min-samples` completions in both runs, the candidate's submit-to-report
//! p99 exceeds the baseline's by more than `--max-p99-regression` percent
//! (default 50), or when any phase's share drifts by more than
//! `--max-share-drift` percentage points (default 15).

use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. The workspace's vendored
// serde shim has no serde_json, and the journal schema is small and stable
// (hand-built by `MetricsSnapshot::to_json_line`), so a local parser keeps the
// reporter dependency-free.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(Json::Num(value)) => *value,
            _ => 0.0,
        }
    }

    fn str_field(&self, key: &str) -> &str {
        match self.get(key) {
            Some(Json::Str(value)) => value,
            _ => "",
        }
    }

    fn arr(&self, key: &str) -> &[Json] {
        match self.get(key) {
            Some(Json::Arr(items)) => items,
            _ => &[],
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(_) => self.parse_number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        // The journal schema never emits \b, \f, or \u escapes.
                        _ => return Err(self.error("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid utf-8"))?,
                    );
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Journal model: the terminal snapshot of one run.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct Quantiles {
    count: u64,
    p50: f64,
    p95: f64,
    p99: f64,
}

impl Quantiles {
    fn from_json(value: &Json) -> Quantiles {
        Quantiles {
            count: value.num("count") as u64,
            p50: value.num("p50_seconds"),
            p95: value.num("p95_seconds"),
            p99: value.num("p99_seconds"),
        }
    }
}

#[derive(Debug, Clone)]
struct ClassRow {
    name: String,
    queue_wait: Quantiles,
    submit_to_report: Quantiles,
}

#[derive(Debug, Clone)]
struct PhaseRow {
    name: String,
    share: f64,
    count: u64,
    p50: f64,
}

#[derive(Debug, Clone, Default)]
struct WarmStart {
    table_hits: f64,
    table_misses: f64,
    memo_hits: f64,
    memo_misses: f64,
    seeded_iterations: f64,
    cold_iterations: f64,
}

impl WarmStart {
    fn table_rate(&self) -> f64 {
        rate(self.table_hits, self.table_misses)
    }
    fn memo_rate(&self) -> f64 {
        rate(self.memo_hits, self.memo_misses)
    }
    fn seeded_fraction(&self) -> f64 {
        rate(self.seeded_iterations, self.cold_iterations)
    }
}

fn rate(hits: f64, misses: f64) -> f64 {
    if hits + misses <= 0.0 {
        0.0
    } else {
        hits / (hits + misses)
    }
}

#[derive(Debug, Clone)]
struct RunSummary {
    path: String,
    snapshots: usize,
    uptime_seconds: f64,
    submissions: u64,
    completed: u64,
    cache_hit_ratio: f64,
    jacobi_sweeps: u64,
    classes: Vec<ClassRow>,
    phases: Vec<PhaseRow>,
    warm_start: WarmStart,
}

fn load_journal(path: &str) -> Result<RunSummary, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read journal {path}: {e}"))?;
    let mut last = None;
    let mut snapshots = 0usize;
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value =
            parse_json(line).map_err(|e| format!("{path}:{}: bad JSON line: {e}", number + 1))?;
        snapshots += 1;
        last = Some(value);
    }
    let last = last.ok_or_else(|| format!("journal {path} holds no snapshots"))?;
    let classes = last
        .arr("classes")
        .iter()
        .map(|class| ClassRow {
            name: class.str_field("class").to_string(),
            queue_wait: class
                .get("queue_wait")
                .map(Quantiles::from_json)
                .unwrap_or_default(),
            submit_to_report: class
                .get("submit_to_report")
                .map(Quantiles::from_json)
                .unwrap_or_default(),
        })
        .collect();
    let phases = last
        .arr("phases")
        .iter()
        .map(|phase| {
            let durations = phase
                .get("durations")
                .map(Quantiles::from_json)
                .unwrap_or_default();
            PhaseRow {
                name: phase.str_field("name").to_string(),
                share: phase.num("share"),
                count: durations.count,
                p50: durations.p50,
            }
        })
        .collect();
    let warm = last.get("warm_start");
    let warm_start = warm
        .map(|w| WarmStart {
            table_hits: w.num("table_hits"),
            table_misses: w.num("table_misses"),
            memo_hits: w.num("memo_hits"),
            memo_misses: w.num("memo_misses"),
            seeded_iterations: w.num("seeded_iterations"),
            cold_iterations: w.num("cold_iterations"),
        })
        .unwrap_or_default();
    Ok(RunSummary {
        path: path.to_string(),
        snapshots,
        uptime_seconds: last.num("uptime_seconds"),
        submissions: last.num("submissions") as u64,
        completed: last.num("completed") as u64,
        cache_hit_ratio: last.get("cache").map(|c| c.num("hit_ratio")).unwrap_or(0.0),
        jacobi_sweeps: last.num("jacobi_sweeps") as u64,
        classes,
        phases,
        warm_start,
    })
}

// ---------------------------------------------------------------------------
// Rendering and the regression gate.
// ---------------------------------------------------------------------------

fn fmt_duration(seconds: f64) -> String {
    if seconds <= 0.0 {
        String::from("-")
    } else if seconds < 1e-3 {
        format!("{:.0}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

fn print_summary(run: &RunSummary) {
    println!(
        "{}: {} snapshots, {:.1}s uptime, {}/{} submissions completed, {:.1}% cache hits",
        run.path,
        run.snapshots,
        run.uptime_seconds,
        run.completed,
        run.submissions,
        run.cache_hit_ratio * 100.0,
    );
    println!("  latency              count      p50      p95      p99");
    for class in &run.classes {
        for (label, q) in [
            ("queue", &class.queue_wait),
            ("e2e", &class.submit_to_report),
        ] {
            if q.count > 0 {
                println!(
                    "    {:<7} {:<9} {:>6} {:>8} {:>8} {:>8}",
                    class.name,
                    label,
                    q.count,
                    fmt_duration(q.p50),
                    fmt_duration(q.p95),
                    fmt_duration(q.p99),
                );
            }
        }
    }
    if !run.phases.is_empty() {
        println!("  phases                         share    count      p50");
        for phase in &run.phases {
            println!(
                "    {:<24} {:>6.1}% {:>8} {:>8}",
                phase.name,
                phase.share * 100.0,
                phase.count,
                fmt_duration(phase.p50),
            );
        }
        println!("    {} Jacobi sweeps", run.jacobi_sweeps);
    }
    let warm = &run.warm_start;
    println!(
        "  warm-start: {:.1}% seeded iterations, {:.1}% table hits, {:.1}% memo hits",
        warm.seeded_fraction() * 100.0,
        warm.table_rate() * 100.0,
        warm.memo_rate() * 100.0,
    );
}

struct Gate {
    max_p99_regression_pct: f64,
    max_share_drift_points: f64,
    min_samples: u64,
}

fn compare(baseline: &RunSummary, candidate: &RunSummary, gate: &Gate) -> Vec<String> {
    let mut violations = Vec::new();
    println!("\ncomparison (baseline → candidate):");
    for base_class in &baseline.classes {
        let Some(cand_class) = candidate.classes.iter().find(|c| c.name == base_class.name) else {
            continue;
        };
        let base = &base_class.submit_to_report;
        let cand = &cand_class.submit_to_report;
        if base.count == 0 && cand.count == 0 {
            continue;
        }
        let delta_pct = |b: f64, c: f64| {
            if b <= 0.0 {
                0.0
            } else {
                (c - b) / b * 100.0
            }
        };
        println!(
            "  {:<7} e2e  p50 {} → {} ({:+.1}%)  p95 {} → {} ({:+.1}%)  p99 {} → {} ({:+.1}%)",
            base_class.name,
            fmt_duration(base.p50),
            fmt_duration(cand.p50),
            delta_pct(base.p50, cand.p50),
            fmt_duration(base.p95),
            fmt_duration(cand.p95),
            delta_pct(base.p95, cand.p95),
            fmt_duration(base.p99),
            fmt_duration(cand.p99),
            delta_pct(base.p99, cand.p99),
        );
        if base.count >= gate.min_samples
            && cand.count >= gate.min_samples
            && base.p99 > 0.0
            && delta_pct(base.p99, cand.p99) > gate.max_p99_regression_pct
        {
            violations.push(format!(
                "class {} submit-to-report p99 regressed {:.1}% (limit {:.1}%)",
                base_class.name,
                delta_pct(base.p99, cand.p99),
                gate.max_p99_regression_pct,
            ));
        }
    }
    if !baseline.phases.is_empty() || !candidate.phases.is_empty() {
        println!("  phase shares:");
        let names: Vec<&str> = baseline
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .chain(
                candidate
                    .phases
                    .iter()
                    .map(|p| p.name.as_str())
                    .filter(|n| baseline.phases.iter().all(|p| p.name != *n)),
            )
            .collect();
        for name in names {
            let share = |run: &RunSummary| {
                run.phases
                    .iter()
                    .find(|p| p.name == name)
                    .map(|p| p.share)
                    .unwrap_or(0.0)
            };
            let base_share = share(baseline);
            let cand_share = share(candidate);
            let drift_points = (cand_share - base_share) * 100.0;
            println!(
                "    {:<24} {:>6.1}% → {:>6.1}% ({:+.1} points)",
                name,
                base_share * 100.0,
                cand_share * 100.0,
                drift_points,
            );
            if drift_points.abs() > gate.max_share_drift_points {
                violations.push(format!(
                    "phase {name} share drifted {drift_points:+.1} points (limit ±{:.1})",
                    gate.max_share_drift_points,
                ));
            }
        }
    }
    let warm_delta = candidate.warm_start.seeded_fraction() - baseline.warm_start.seeded_fraction();
    println!(
        "  warm-start: seeded {:.1}% → {:.1}% ({:+.1} points), table {:.1}% → {:.1}%, memo {:.1}% → {:.1}%",
        baseline.warm_start.seeded_fraction() * 100.0,
        candidate.warm_start.seeded_fraction() * 100.0,
        warm_delta * 100.0,
        baseline.warm_start.table_rate() * 100.0,
        candidate.warm_start.table_rate() * 100.0,
        baseline.warm_start.memo_rate() * 100.0,
        candidate.warm_start.memo_rate() * 100.0,
    );
    violations
}

struct Args {
    baseline: String,
    candidate: Option<String>,
    gate: Gate,
}

fn parse_args() -> Result<Args, String> {
    let mut paths = Vec::new();
    let mut gate = Gate {
        max_p99_regression_pct: 50.0,
        max_share_drift_points: 15.0,
        min_samples: 5,
    };
    for arg in std::env::args().skip(1) {
        if let Some(value) = arg.strip_prefix("--max-p99-regression=") {
            gate.max_p99_regression_pct = value
                .parse()
                .map_err(|_| format!("bad --max-p99-regression value `{value}`"))?;
        } else if let Some(value) = arg.strip_prefix("--max-share-drift=") {
            gate.max_share_drift_points = value
                .parse()
                .map_err(|_| format!("bad --max-share-drift value `{value}`"))?;
        } else if let Some(value) = arg.strip_prefix("--min-samples=") {
            gate.min_samples = value
                .parse()
                .map_err(|_| format!("bad --min-samples value `{value}`"))?;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            paths.push(arg);
        }
    }
    match paths.len() {
        1 => Ok(Args {
            baseline: paths.remove(0),
            candidate: None,
            gate,
        }),
        2 => {
            let candidate = paths.pop();
            Ok(Args {
                baseline: paths.remove(0),
                candidate,
                gate,
            })
        }
        _ => Err(String::from("expected one or two journal paths")),
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let baseline = load_journal(&args.baseline)?;
    print_summary(&baseline);
    let Some(candidate_path) = &args.candidate else {
        return Ok(true);
    };
    let candidate = load_journal(candidate_path)?;
    println!();
    print_summary(&candidate);
    let violations = compare(&baseline, &candidate, &args.gate);
    if violations.is_empty() {
        println!("\nno regressions past thresholds");
        Ok(true)
    } else {
        for violation in &violations {
            eprintln!("vqc-report: REGRESSION: {violation}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("vqc-report: {message}");
            eprintln!(
                "usage: vqc-report BASELINE.jsonl [CANDIDATE.jsonl] [--max-p99-regression=PCT] [--max-share-drift=POINTS] [--min-samples=N]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("vqc-report: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_journal_line_shape() {
        let line = "{\"seq\":3,\"uptime_seconds\":1.25,\"submissions\":4,\"completed\":4,\
                    \"cache\":{\"hits\":6,\"misses\":2,\"hit_ratio\":0.75},\
                    \"warm_start\":{\"table_hits\":3,\"table_misses\":1,\"memo_hits\":5,\
                    \"memo_misses\":5,\"seeded_iterations\":80,\"cold_iterations\":20},\
                    \"phases\":[{\"name\":\"propagation\",\"share\":0.6,\
                    \"durations\":{\"count\":7,\"mean_seconds\":0.01,\"p50_seconds\":0.009,\
                    \"p95_seconds\":0.02,\"p99_seconds\":0.02}}],\"jacobi_sweeps\":42,\
                    \"classes\":[{\"class\":\"normal\",\
                    \"queue_wait\":{\"count\":4,\"mean_seconds\":0.001,\"p50_seconds\":0.001,\
                    \"p95_seconds\":0.002,\"p99_seconds\":0.002},\
                    \"submit_to_report\":{\"count\":4,\"mean_seconds\":0.1,\"p50_seconds\":0.09,\
                    \"p95_seconds\":0.2,\"p99_seconds\":0.25}}]}";
        let value = parse_json(line).expect("journal line parses");
        assert_eq!(value.num("seq"), 3.0);
        assert_eq!(value.arr("phases").len(), 1);
        assert_eq!(value.arr("phases")[0].str_field("name"), "propagation");
        assert_eq!(value.num("jacobi_sweeps"), 42.0);
        let class = &value.arr("classes")[0];
        assert_eq!(class.str_field("class"), "normal");
        let quantiles = Quantiles::from_json(class.get("submit_to_report").unwrap());
        assert_eq!(quantiles.count, 4);
        assert!((quantiles.p99 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gate_flags_a_p99_regression_and_share_drift() {
        let quantiles = |p99: f64| Quantiles {
            count: 10,
            p50: p99 / 2.0,
            p95: p99 * 0.9,
            p99,
        };
        let run = |p99: f64, share: f64| RunSummary {
            path: String::from("x"),
            snapshots: 1,
            uptime_seconds: 1.0,
            submissions: 10,
            completed: 10,
            cache_hit_ratio: 0.5,
            jacobi_sweeps: 1,
            classes: vec![ClassRow {
                name: String::from("normal"),
                queue_wait: Quantiles::default(),
                submit_to_report: quantiles(p99),
            }],
            phases: vec![PhaseRow {
                name: String::from("propagation"),
                share,
                count: 5,
                p50: 0.01,
            }],
            warm_start: WarmStart::default(),
        };
        let gate = Gate {
            max_p99_regression_pct: 50.0,
            max_share_drift_points: 15.0,
            min_samples: 5,
        };
        // Within thresholds: +40% p99, +10 points share.
        assert!(compare(&run(0.10, 0.50), &run(0.14, 0.60), &gate).is_empty());
        // p99 doubles: violation.
        let violations = compare(&run(0.10, 0.50), &run(0.20, 0.50), &gate);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("p99 regressed"));
        // Share collapses by 20 points: violation.
        let violations = compare(&run(0.10, 0.50), &run(0.10, 0.30), &gate);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("share drifted"));
    }

    #[test]
    fn self_comparison_is_clean() {
        let text = "{\"seq\":1,\"uptime_seconds\":1.0,\"submissions\":2,\"completed\":2,\
                    \"cache\":{\"hit_ratio\":0.5},\"warm_start\":{},\"phases\":[],\
                    \"jacobi_sweeps\":0,\"classes\":[]}";
        let dir = std::env::temp_dir().join(format!("vqc-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::write(&path, format!("{text}\n{text}\n")).unwrap();
        let summary = load_journal(path.to_str().unwrap()).expect("journal loads");
        assert_eq!(summary.snapshots, 2);
        let gate = Gate {
            max_p99_regression_pct: 50.0,
            max_share_drift_points: 15.0,
            min_samples: 5,
        };
        assert!(compare(&summary, &summary, &gate).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
