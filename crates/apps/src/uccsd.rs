//! UCCSD-style ansatz circuit generation (Section 4.1).
//!
//! The Unitary Coupled Cluster Single-Double ansatz Trotterizes the excitation operator
//! `exp(T - T†)` into a product of Pauli-string evolutions: every single excitation
//! `i → a` contributes two strings and every double excitation `ij → ab` contributes
//! eight, and all strings belonging to one excitation share a single variational
//! parameter θ. Each string is compiled in the standard way — basis changes onto the
//! Z axis, a CNOT ladder, one parameterized `Rz(θ)`, and the inverse ladder — which is
//! exactly the structure the paper's partial-compilation strategies exploit:
//!
//! * the *only* parameterized gates are the central `Rz(θᵢ)` rotations (a few percent
//!   of all gates), and
//! * the θᵢ appear in monotonically increasing order (parameter monotonicity).
//!
//! The excitation list is derived from the molecule's size at half filling and truncated
//! or cycled so the parameter count matches Table 2 of the paper (see DESIGN.md for the
//! substitution rationale: the paper generated these circuits with Qiskit + PySCF).

use crate::molecules::Molecule;
use vqc_circuit::{Circuit, ParamExpr};

/// The Pauli axis a qubit contributes to one excitation string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

/// One fermionic excitation of the UCCSD ansatz.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Excitation {
    /// A single excitation from an occupied orbital to a virtual orbital.
    Single {
        /// Occupied orbital (qubit) index.
        from: usize,
        /// Virtual orbital (qubit) index.
        to: usize,
    },
    /// A double excitation from two occupied orbitals to two virtual orbitals.
    Double {
        /// First occupied orbital.
        from: (usize, usize),
        /// Second pair: virtual orbitals.
        to: (usize, usize),
    },
}

impl Excitation {
    /// The qubits this excitation touches, in ascending order.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Excitation::Single { from, to } => vec![*from, *to],
            Excitation::Double { from, to } => {
                let mut v = vec![from.0, from.1, to.0, to.1];
                v.sort_unstable();
                v
            }
        }
    }
}

/// Enumerates the single and double excitations of a molecule at half filling
/// (occupied orbitals `0..n/2`, virtual orbitals `n/2..n`), singles first.
pub fn enumerate_excitations(num_qubits: usize) -> Vec<Excitation> {
    let occupied: Vec<usize> = (0..num_qubits / 2).collect();
    let virtuals: Vec<usize> = (num_qubits / 2..num_qubits).collect();
    let mut excitations = Vec::new();
    for &i in &occupied {
        for &a in &virtuals {
            excitations.push(Excitation::Single { from: i, to: a });
        }
    }
    for (x, &i) in occupied.iter().enumerate() {
        for &j in occupied.iter().skip(x + 1) {
            for (y, &a) in virtuals.iter().enumerate() {
                for &b in virtuals.iter().skip(y + 1) {
                    excitations.push(Excitation::Double {
                        from: (i, j),
                        to: (a, b),
                    });
                }
            }
        }
    }
    excitations
}

/// The excitation list used for a molecule: the enumeration of
/// [`enumerate_excitations`], cycled if necessary so exactly
/// [`Molecule::num_parameters`] excitations (and hence parameters) are produced.
pub fn molecule_excitations(molecule: Molecule) -> Vec<Excitation> {
    let all = enumerate_excitations(molecule.num_qubits());
    let wanted = molecule.num_parameters();
    assert!(
        !all.is_empty(),
        "molecule must have at least one excitation"
    );
    (0..wanted).map(|i| all[i % all.len()].clone()).collect()
}

/// Appends the circuit for `exp(-i θ/2 · P)` where `P` is the Pauli string given by
/// `axes` acting on `qubits`: basis changes, a CNOT ladder, `Rz(θ)`, and the inverse.
fn append_pauli_evolution(
    circuit: &mut Circuit,
    qubits: &[usize],
    axes: &[Axis],
    angle: ParamExpr,
) {
    debug_assert_eq!(qubits.len(), axes.len());
    // Basis changes onto Z.
    for (&q, &axis) in qubits.iter().zip(axes.iter()) {
        match axis {
            Axis::X => circuit.h(q),
            Axis::Y => circuit.rx(q, std::f64::consts::FRAC_PI_2),
        }
    }
    // Entangling ladder.
    for pair in qubits.windows(2) {
        circuit.cx(pair[0], pair[1]);
    }
    // The single parameterized rotation of this string.
    // audit:allow(unwrap): ansatz Pauli strings are built non-empty
    circuit.rz_expr(*qubits.last().expect("non-empty string"), angle);
    // Inverse ladder.
    for pair in qubits.windows(2).rev() {
        circuit.cx(pair[0], pair[1]);
    }
    // Inverse basis changes.
    for (&q, &axis) in qubits.iter().zip(axes.iter()) {
        match axis {
            Axis::X => circuit.h(q),
            Axis::Y => circuit.rx(q, -std::f64::consts::FRAC_PI_2),
        }
    }
}

/// Appends the full Trotterized evolution of one excitation, parameterized by θ with
/// the given index.
pub fn append_excitation(circuit: &mut Circuit, excitation: &Excitation, parameter: usize) {
    match excitation {
        Excitation::Single { from, to } => {
            let qubits = [*from, *to];
            let theta = ParamExpr::theta(parameter);
            append_pauli_evolution(circuit, &qubits, &[Axis::X, Axis::Y], theta.scaled(0.5));
            append_pauli_evolution(circuit, &qubits, &[Axis::Y, Axis::X], theta.scaled(-0.5));
        }
        Excitation::Double { from, to } => {
            let qubits = [from.0, from.1, to.0, to.1];
            let theta = ParamExpr::theta(parameter);
            let plus: [[Axis; 4]; 4] = [
                [Axis::X, Axis::X, Axis::X, Axis::Y],
                [Axis::X, Axis::X, Axis::Y, Axis::X],
                [Axis::X, Axis::Y, Axis::X, Axis::X],
                [Axis::Y, Axis::X, Axis::X, Axis::X],
            ];
            let minus: [[Axis; 4]; 4] = [
                [Axis::Y, Axis::Y, Axis::Y, Axis::X],
                [Axis::Y, Axis::Y, Axis::X, Axis::Y],
                [Axis::Y, Axis::X, Axis::Y, Axis::Y],
                [Axis::X, Axis::Y, Axis::Y, Axis::Y],
            ];
            for axes in &plus {
                append_pauli_evolution(circuit, &qubits, axes, theta.scaled(0.125));
            }
            for axes in &minus {
                append_pauli_evolution(circuit, &qubits, axes, theta.scaled(-0.125));
            }
        }
    }
}

/// Builds the UCCSD-style ansatz circuit for a molecule: a Hartree-Fock-like
/// preparation layer (X on each occupied orbital) followed by the Trotterized
/// excitations, one parameter per excitation.
pub fn uccsd_circuit(molecule: Molecule) -> Circuit {
    let num_qubits = molecule.num_qubits();
    let mut circuit = Circuit::new(num_qubits);
    for q in 0..molecule.num_occupied() {
        circuit.x(q);
    }
    for (index, excitation) in molecule_excitations(molecule).iter().enumerate() {
        append_excitation(&mut circuit, excitation, index);
    }
    circuit
}

/// Builds a generic UCCSD-style ansatz on `num_qubits` qubits with exactly
/// `num_parameters` excitation parameters (cycling the excitation list if necessary).
pub fn uccsd_ansatz(num_qubits: usize, num_parameters: usize) -> Circuit {
    let all = enumerate_excitations(num_qubits);
    assert!(!all.is_empty(), "need at least 2 qubits for an excitation");
    let mut circuit = Circuit::new(num_qubits);
    for q in 0..num_qubits / 2 {
        circuit.x(q);
    }
    for index in 0..num_parameters {
        append_excitation(&mut circuit, &all[index % all.len()], index);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::passes::optimize;

    #[test]
    fn excitation_enumeration_counts() {
        // 4 qubits at half filling: 2 occ x 2 virt singles, 1 x 1 doubles.
        let excitations = enumerate_excitations(4);
        let singles = excitations
            .iter()
            .filter(|e| matches!(e, Excitation::Single { .. }))
            .count();
        let doubles = excitations.len() - singles;
        assert_eq!(singles, 4);
        assert_eq!(doubles, 1);

        // 6 qubits: 9 singles, 3 occ pairs x 3 virt pairs = 9 doubles.
        let excitations = enumerate_excitations(6);
        assert_eq!(excitations.len(), 9 + 9);
    }

    #[test]
    fn molecule_circuits_match_table2_shape() {
        for molecule in [Molecule::H2, Molecule::LiH, Molecule::BeH2, Molecule::NaH] {
            let circuit = uccsd_circuit(molecule);
            assert_eq!(circuit.num_qubits(), molecule.num_qubits(), "{molecule}");
            assert_eq!(
                circuit.num_parameters(),
                molecule.num_parameters(),
                "{molecule}"
            );
            assert!(circuit.is_parameter_monotonic(), "{molecule}");
        }
    }

    #[test]
    fn h2o_circuit_is_large_but_correctly_parameterized() {
        let circuit = uccsd_circuit(Molecule::H2O);
        assert_eq!(circuit.num_qubits(), 10);
        assert_eq!(circuit.num_parameters(), 92);
        assert!(circuit.len() > 5_000);
        assert!(circuit.is_parameter_monotonic());
    }

    #[test]
    fn parameterized_fraction_is_a_few_percent() {
        // The paper reports 5–8 % parameterized gates for VQE-UCCSD benchmarks; our
        // generator lands in the same neighbourhood for the double-dominated molecules.
        for molecule in [Molecule::BeH2, Molecule::NaH] {
            let circuit = optimize(&uccsd_circuit(molecule));
            let fraction = circuit.parameterized_fraction();
            assert!(
                (0.03..=0.15).contains(&fraction),
                "{molecule}: fraction {fraction}"
            );
        }
    }

    #[test]
    fn optimization_preserves_parameters_and_monotonicity() {
        let circuit = uccsd_circuit(Molecule::LiH);
        let optimized = optimize(&circuit);
        assert_eq!(optimized.num_parameters(), 8);
        assert!(optimized.is_parameter_monotonic());
        assert!(optimized.len() <= vqc_circuit::passes::decompose_to_basis(&circuit).len());
    }

    #[test]
    fn excitations_touch_expected_qubits() {
        let single = Excitation::Single { from: 1, to: 3 };
        assert_eq!(single.qubits(), vec![1, 3]);
        let double = Excitation::Double {
            from: (0, 1),
            to: (3, 2),
        };
        assert_eq!(double.qubits(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn generic_ansatz_builder_matches_request() {
        let circuit = uccsd_ansatz(6, 10);
        assert_eq!(circuit.num_qubits(), 6);
        assert_eq!(circuit.num_parameters(), 10);
        assert!(circuit.is_parameter_monotonic());
    }

    #[test]
    fn bound_ansatz_simulates_to_a_normalized_state() {
        use vqc_sim::StateVector;
        let circuit = uccsd_circuit(Molecule::H2);
        let bound = circuit.bind(&[0.1; 3]);
        let state = StateVector::from_circuit(&bound);
        let total: f64 = state.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
