//! The molecule registry for the VQE benchmarks (Table 2).
//!
//! The paper generates its UCCSD ansatz circuits with IBM Qiskit and PySCF; this
//! reproduction carries the same five molecules with the circuit width and variational
//! parameter count reported in Table 2, and builds structurally equivalent ansatz
//! circuits (see [`crate::uccsd`]). Molecular Hamiltonians are provided for the
//! end-to-end VQE examples: the well-known 2-qubit reduced H₂ Hamiltonian is exact, and
//! the larger molecules use deterministic synthetic Hamiltonians with realistic term
//! structure (documented in DESIGN.md), since the compilation study never depends on
//! the Hamiltonian coefficients — only on the ansatz circuit structure.

use serde::{Deserialize, Serialize};
use std::fmt;
use vqc_sim::{Pauli, PauliOperator, PauliString};

/// One of the five VQE-UCCSD benchmark molecules of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Molecule {
    /// Molecular hydrogen (2 qubits, 3 parameters).
    H2,
    /// Lithium hydride (4 qubits, 8 parameters).
    LiH,
    /// Beryllium hydride (6 qubits, 26 parameters).
    BeH2,
    /// Sodium hydride (8 qubits, 24 parameters).
    NaH,
    /// Water (10 qubits, 92 parameters).
    H2O,
}

impl Molecule {
    /// All five benchmark molecules, in Table-2 order.
    pub fn all() -> [Molecule; 5] {
        [
            Molecule::H2,
            Molecule::LiH,
            Molecule::BeH2,
            Molecule::NaH,
            Molecule::H2O,
        ]
    }

    /// Circuit width (number of qubits) from Table 2.
    pub fn num_qubits(&self) -> usize {
        match self {
            Molecule::H2 => 2,
            Molecule::LiH => 4,
            Molecule::BeH2 => 6,
            Molecule::NaH => 8,
            Molecule::H2O => 10,
        }
    }

    /// Number of UCCSD variational parameters from Table 2.
    pub fn num_parameters(&self) -> usize {
        match self {
            Molecule::H2 => 3,
            Molecule::LiH => 8,
            Molecule::BeH2 => 26,
            Molecule::NaH => 24,
            Molecule::H2O => 92,
        }
    }

    /// Gate-based runtime (ns) reported in Table 2, used as the reference point when
    /// comparing reproduced runtimes in EXPERIMENTS.md.
    pub fn paper_gate_runtime_ns(&self) -> f64 {
        match self {
            Molecule::H2 => 35.0,
            Molecule::LiH => 872.0,
            Molecule::BeH2 => 5308.0,
            Molecule::NaH => 5490.0,
            Molecule::H2O => 33842.0,
        }
    }

    /// Number of spin-orbitals treated as occupied by the ansatz generator (half the
    /// qubits, i.e. half filling).
    pub fn num_occupied(&self) -> usize {
        self.num_qubits() / 2
    }

    /// A qubit Hamiltonian for the molecule.
    ///
    /// * `H2` uses the standard 2-qubit reduced Hamiltonian (STO-3G, 0.735 Å bond
    ///   length) that appears throughout the VQE literature.
    /// * The larger molecules use a deterministic synthetic Hamiltonian with one- and
    ///   two-qubit Pauli terms whose coefficients decay with interaction distance; this
    ///   preserves the *shape* of a molecular spectrum (a well-separated ground state)
    ///   without depending on external chemistry packages.
    pub fn hamiltonian(&self) -> PauliOperator {
        match self {
            Molecule::H2 => h2_hamiltonian(),
            _ => synthetic_hamiltonian(self.num_qubits(), *self as usize as u64),
        }
    }
}

impl fmt::Display for Molecule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Molecule::H2 => "H2",
            Molecule::LiH => "LiH",
            Molecule::BeH2 => "BeH2",
            Molecule::NaH => "NaH",
            Molecule::H2O => "H2O",
        };
        write!(f, "{name}")
    }
}

/// The 2-qubit reduced H₂ Hamiltonian at 0.735 Å (coefficients in Hartree).
pub fn h2_hamiltonian() -> PauliOperator {
    PauliOperator::new(2)
        .with_term(-1.052_373, PauliString::identity(2))
        .with_term(0.397_936, PauliString::single(2, 0, Pauli::Z))
        .with_term(-0.397_936, PauliString::single(2, 1, Pauli::Z))
        .with_term(-0.011_280, PauliString::zz(2, 0, 1))
        .with_term(0.180_931, PauliString::new(vec![Pauli::X, Pauli::X]))
}

/// Deterministic synthetic molecular-style Hamiltonian on `n` qubits: single-qubit Z
/// terms plus distance-decaying ZZ/XX pair terms.
pub fn synthetic_hamiltonian(n: usize, seed: u64) -> PauliOperator {
    let mut h = PauliOperator::new(n);
    h.add_term(-(n as f64) * 0.5, PauliString::identity(n));
    for q in 0..n {
        let coefficient = 0.4
            * (0.9_f64).powi(q as i32)
            * if (q + seed as usize).is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
        h.add_term(coefficient, PauliString::single(n, q, Pauli::Z));
    }
    for a in 0..n {
        for b in a + 1..n {
            let distance = (b - a) as f64;
            let zz = 0.25 / distance;
            h.add_term(zz, PauliString::zz(n, a, b));
            if b == a + 1 {
                let mut paulis = vec![Pauli::I; n];
                paulis[a] = Pauli::X;
                paulis[b] = Pauli::X;
                h.add_term(0.12, PauliString::new(paulis));
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_widths_and_parameter_counts() {
        assert_eq!(Molecule::H2.num_qubits(), 2);
        assert_eq!(Molecule::H2.num_parameters(), 3);
        assert_eq!(Molecule::LiH.num_qubits(), 4);
        assert_eq!(Molecule::LiH.num_parameters(), 8);
        assert_eq!(Molecule::BeH2.num_qubits(), 6);
        assert_eq!(Molecule::BeH2.num_parameters(), 26);
        assert_eq!(Molecule::NaH.num_qubits(), 8);
        assert_eq!(Molecule::NaH.num_parameters(), 24);
        assert_eq!(Molecule::H2O.num_qubits(), 10);
        assert_eq!(Molecule::H2O.num_parameters(), 92);
        assert_eq!(Molecule::all().len(), 5);
    }

    #[test]
    fn h2_hamiltonian_ground_energy_is_known() {
        // The 2-qubit reduced H2 Hamiltonian has a ground-state energy near -1.85 Ha.
        let h = h2_hamiltonian();
        let ground = h.min_eigenvalue(500);
        assert!(
            (-1.88..=-1.82).contains(&ground),
            "ground energy {ground} outside expected window"
        );
    }

    #[test]
    fn hamiltonian_width_matches_molecule() {
        for molecule in Molecule::all() {
            let h = molecule.hamiltonian();
            assert_eq!(h.num_qubits(), molecule.num_qubits());
            assert!(h.num_terms() > 0);
        }
    }

    #[test]
    fn synthetic_hamiltonians_are_deterministic_and_hermitian() {
        let a = synthetic_hamiltonian(4, 2);
        let b = synthetic_hamiltonian(4, 2);
        assert_eq!(a.num_terms(), b.num_terms());
        assert!(a.matrix().is_hermitian(1e-12));
    }

    #[test]
    fn display_names() {
        assert_eq!(Molecule::BeH2.to_string(), "BeH2");
        assert_eq!(Molecule::H2O.to_string(), "H2O");
    }
}
