//! A derivative-free Nelder–Mead optimizer.
//!
//! Variational algorithms pair the quantum circuit with a classical optimizer that is
//! robust to small amounts of noise; the paper (like most of the VQE literature) names
//! Nelder–Mead as the typical choice. This implementation is used by the end-to-end
//! examples and the [`crate::variational`] drivers.

use serde::{Deserialize, Serialize};

/// Configuration for the Nelder–Mead simplex optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NelderMead {
    /// Maximum number of objective evaluations.
    pub max_evaluations: usize,
    /// Convergence tolerance on the spread of simplex function values.
    pub tolerance: f64,
    /// Initial simplex step added to each coordinate of the starting point.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_evaluations: 2000,
            tolerance: 1e-7,
            initial_step: 0.25,
        }
    }
}

/// The outcome of a Nelder–Mead minimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResult {
    /// The best parameter vector found.
    pub parameters: Vec<f64>,
    /// Objective value at [`OptimizationResult::parameters`].
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// Whether the simplex spread fell below the tolerance before the budget ran out.
    pub converged: bool,
    /// Best objective value after each accepted simplex update (for plotting progress).
    pub history: Vec<f64>,
}

impl NelderMead {
    /// Minimizes `objective` starting from `initial`, using the standard
    /// reflection/expansion/contraction/shrink simplex moves.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(
        &self,
        mut objective: F,
        initial: &[f64],
    ) -> OptimizationResult {
        assert!(!initial.is_empty(), "cannot optimize over zero parameters");
        let n = initial.len();
        let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

        let mut evaluations = 0usize;
        let mut history = Vec::new();
        let mut eval = |point: &[f64], evaluations: &mut usize| -> f64 {
            *evaluations += 1;
            objective(point)
        };

        // Initial simplex: the starting point plus one perturbed vertex per dimension.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let value = eval(initial, &mut evaluations);
        simplex.push((initial.to_vec(), value));
        for i in 0..n {
            let mut vertex = initial.to_vec();
            vertex[i] += self.initial_step;
            let value = eval(&vertex, &mut evaluations);
            simplex.push((vertex, value));
        }

        while evaluations < self.max_evaluations {
            // audit:allow(unwrap): Nelder-Mead objective values are finite (non-finite energies are rejected at evaluation)
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective values are finite"));
            history.push(simplex[0].1);

            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                return OptimizationResult {
                    parameters: simplex[0].0.clone(),
                    value: simplex[0].1,
                    evaluations,
                    converged: true,
                    history,
                };
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for (vertex, _) in simplex.iter().take(n) {
                for (c, v) in centroid.iter_mut().zip(vertex.iter()) {
                    *c += v / n as f64;
                }
            }
            let worst = simplex[n].clone();

            let reflect: Vec<f64> = centroid
                .iter()
                .zip(worst.0.iter())
                .map(|(c, w)| c + alpha * (c - w))
                .collect();
            let reflect_value = eval(&reflect, &mut evaluations);

            if reflect_value < simplex[0].1 {
                // Try expanding further in the same direction.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(worst.0.iter())
                    .map(|(c, w)| c + gamma * (c - w))
                    .collect();
                let expand_value = eval(&expand, &mut evaluations);
                simplex[n] = if expand_value < reflect_value {
                    (expand, expand_value)
                } else {
                    (reflect, reflect_value)
                };
            } else if reflect_value < simplex[n - 1].1 {
                simplex[n] = (reflect, reflect_value);
            } else {
                // Contract toward the centroid.
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(worst.0.iter())
                    .map(|(c, w)| c + rho * (w - c))
                    .collect();
                let contract_value = eval(&contract, &mut evaluations);
                if contract_value < worst.1 {
                    simplex[n] = (contract, contract_value);
                } else {
                    // Shrink every vertex toward the best one.
                    let best = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        let shrunk: Vec<f64> = best
                            .iter()
                            .zip(entry.0.iter())
                            .map(|(b, v)| b + sigma * (v - b))
                            .collect();
                        let value = eval(&shrunk, &mut evaluations);
                        *entry = (shrunk, value);
                    }
                }
            }
        }

        // audit:allow(unwrap): Nelder-Mead objective values are finite (non-finite energies are rejected at evaluation)
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective values are finite"));
        history.push(simplex[0].1);
        OptimizationResult {
            parameters: simplex[0].0.clone(),
            value: simplex[0].1,
            evaluations,
            converged: false,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic_bowl() {
        let result = NelderMead::default().minimize(
            |x| x.iter().map(|v| (v - 1.5) * (v - 1.5)).sum(),
            &[0.0, 0.0, 0.0],
        );
        assert!(result.value < 1e-6, "value {}", result.value);
        for p in &result.parameters {
            assert!((p - 1.5).abs() < 1e-3);
        }
        assert!(result.converged);
    }

    #[test]
    fn minimizes_a_shifted_cosine_landscape() {
        // A 1-D periodic landscape similar to a variational energy surface.
        let result = NelderMead::default().minimize(|x| -(x[0].cos()) + 0.1 * x[0] * x[0], &[1.0]);
        assert!(result.value < -0.9);
        assert!(result.parameters[0].abs() < 0.5);
    }

    #[test]
    fn respects_the_evaluation_budget() {
        let optimizer = NelderMead {
            max_evaluations: 25,
            ..NelderMead::default()
        };
        let result = optimizer.minimize(|x| x.iter().map(|v| v * v).sum(), &[5.0, -3.0]);
        assert!(result.evaluations <= 25 + 2);
        assert!(!result.history.is_empty());
    }

    #[test]
    fn history_is_monotonically_non_increasing() {
        let result = NelderMead::default()
            .minimize(|x| (x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2), &[0.0, 0.0]);
        for window in result.history.windows(2) {
            assert!(window[1] <= window[0] + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zero parameters")]
    fn empty_parameter_vector_is_rejected() {
        NelderMead::default().minimize(|_| 0.0, &[]);
    }
}
