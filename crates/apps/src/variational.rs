//! End-to-end variational loops (Figure 1 of the paper).
//!
//! These drivers close the hybrid quantum-classical loop: the parameterized circuit is
//! bound with the optimizer's current guess, simulated, and the measured cost is fed
//! back to Nelder–Mead. They exist so the examples can demonstrate complete VQE and
//! QAOA runs on top of the same benchmark circuits the compilation study uses; the
//! compilation strategies themselves only care about the circuits.

use crate::graphs::Graph;
use crate::molecules::Molecule;
use crate::optimizer::{NelderMead, OptimizationResult};
use crate::qaoa::{maxcut_hamiltonian, qaoa_circuit};
use crate::uccsd::uccsd_circuit;
use vqc_circuit::Circuit;
use vqc_sim::{PauliOperator, StateVector};

/// The outcome of a VQE run.
#[derive(Debug, Clone)]
pub struct VqeResult {
    /// Best parameters found by the classical optimizer.
    pub parameters: Vec<f64>,
    /// Energy at the best parameters.
    pub energy: f64,
    /// Number of energy evaluations (circuit executions).
    pub evaluations: usize,
    /// Energy after each accepted optimizer step.
    pub history: Vec<f64>,
}

/// The outcome of a QAOA run.
#[derive(Debug, Clone)]
pub struct QaoaResult {
    /// Best parameters found by the classical optimizer.
    pub parameters: Vec<f64>,
    /// Expected cut size at the best parameters.
    pub expected_cut: f64,
    /// The true maximum cut of the graph (by brute force).
    pub max_cut: usize,
    /// `expected_cut / max_cut`, the approximation ratio.
    pub approximation_ratio: f64,
    /// Number of objective evaluations (circuit executions).
    pub evaluations: usize,
}

/// Evaluates the energy `⟨ψ(θ)|H|ψ(θ)⟩` of an ansatz at a specific parameter vector.
pub fn evaluate_energy(ansatz: &Circuit, hamiltonian: &PauliOperator, parameters: &[f64]) -> f64 {
    let bound = ansatz.bind(parameters);
    let state = StateVector::from_circuit(&bound);
    hamiltonian.expectation(&state)
}

/// Runs VQE for an arbitrary ansatz and Hamiltonian.
pub fn run_vqe(
    ansatz: &Circuit,
    hamiltonian: &PauliOperator,
    optimizer: &NelderMead,
    initial: &[f64],
) -> VqeResult {
    let result: OptimizationResult = optimizer.minimize(
        |params| evaluate_energy(ansatz, hamiltonian, params),
        initial,
    );
    VqeResult {
        parameters: result.parameters,
        energy: result.value,
        evaluations: result.evaluations,
        history: result.history,
    }
}

/// Runs VQE for one of the benchmark molecules using its UCCSD-style ansatz.
pub fn run_molecule_vqe(molecule: Molecule, optimizer: &NelderMead) -> VqeResult {
    let ansatz = uccsd_circuit(molecule);
    let hamiltonian = molecule.hamiltonian();
    let initial = vec![0.0; molecule.num_parameters()];
    run_vqe(&ansatz, &hamiltonian, optimizer, &initial)
}

/// Runs QAOA MAXCUT on a graph with `p` rounds.
pub fn run_qaoa(graph: &Graph, p: usize, optimizer: &NelderMead) -> QaoaResult {
    let circuit = qaoa_circuit(graph, p);
    let hamiltonian = maxcut_hamiltonian(graph);
    let initial = vec![0.1; 2 * p];
    // QAOA maximizes the expected cut, so minimize its negative.
    let result = optimizer.minimize(
        |params| -evaluate_energy(&circuit, &hamiltonian, params),
        &initial,
    );
    let expected_cut = -result.value;
    let max_cut = graph.max_cut();
    QaoaResult {
        parameters: result.parameters,
        expected_cut,
        max_cut,
        approximation_ratio: if max_cut > 0 {
            expected_cut / max_cut as f64
        } else {
            1.0
        },
        evaluations: result.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vqe_on_h2_finds_the_ground_state() {
        let optimizer = NelderMead {
            max_evaluations: 600,
            ..NelderMead::default()
        };
        let result = run_molecule_vqe(Molecule::H2, &optimizer);
        let exact = Molecule::H2.hamiltonian().min_eigenvalue(500);
        assert!(
            result.energy <= exact + 0.05,
            "VQE energy {} vs exact {exact}",
            result.energy
        );
        assert!(result.evaluations > 0);
    }

    #[test]
    fn vqe_energy_never_beats_the_true_minimum() {
        let optimizer = NelderMead {
            max_evaluations: 300,
            ..NelderMead::default()
        };
        let result = run_molecule_vqe(Molecule::H2, &optimizer);
        let exact = Molecule::H2.hamiltonian().min_eigenvalue(800);
        assert!(result.energy >= exact - 1e-6);
    }

    #[test]
    fn qaoa_beats_random_guessing_on_the_clique() {
        let graph = Graph::clique(4);
        let optimizer = NelderMead {
            max_evaluations: 400,
            ..NelderMead::default()
        };
        let result = run_qaoa(&graph, 1, &optimizer);
        // Random assignment cuts half the edges (3 of 6) in expectation; even p=1 QAOA
        // should do better, and the paper quotes a 69 % worst-case ratio at p=1.
        assert!(
            result.expected_cut > 3.0,
            "expected cut {}",
            result.expected_cut
        );
        assert!(result.approximation_ratio > 0.69);
        assert_eq!(result.max_cut, 4);
    }

    #[test]
    fn qaoa_approximation_ratio_improves_with_p() {
        let graph = Graph::cycle(6);
        let optimizer = NelderMead {
            max_evaluations: 500,
            ..NelderMead::default()
        };
        let p1 = run_qaoa(&graph, 1, &optimizer);
        let p2 = run_qaoa(&graph, 2, &optimizer);
        assert!(p2.approximation_ratio >= p1.approximation_ratio - 0.05);
        assert!(p1.approximation_ratio > 0.5);
    }

    #[test]
    fn energy_evaluation_is_deterministic() {
        let ansatz = uccsd_circuit(Molecule::H2);
        let h = Molecule::H2.hamiltonian();
        let a = evaluate_energy(&ansatz, &h, &[0.1, 0.2, 0.3]);
        let b = evaluate_energy(&ansatz, &h, &[0.1, 0.2, 0.3]);
        assert_eq!(a, b);
    }
}
