//! Figure 2: gate-based vs full-GRAPE pulse length for MAXCUT on the 4-node clique, as
//! a function of the number of QAOA rounds p. Gate-based time grows linearly in p while
//! the GRAPE time asymptotes.

use vqc_apps::graphs::Graph;
use vqc_apps::qaoa::qaoa_circuit;
use vqc_bench::{
    persist_if_requested, print_header, reference_parameters, runtime_with_options, Effort,
};
use vqc_core::Strategy;

fn main() {
    let effort = Effort::from_env();
    print_header(
        "Figure 2: gate-based vs GRAPE pulse length, K4 MAXCUT",
        effort,
    );
    let graph = Graph::clique(4);
    let mut options = effort.compiler_options();
    // The asymptote only appears when GRAPE may fuse a whole round stack into one
    // block, so lift the per-block op cap (the circuit is only 4 qubits wide).
    options.max_block_ops = usize::MAX;
    if matches!(effort, Effort::Fast) {
        options.grape.dt_ns = 1.0;
        options.search_precision_ns = 2.0;
    }
    let compiler = runtime_with_options(options);

    let max_p = match effort {
        Effort::Fast => 3,
        Effort::Standard => 4,
        Effort::Full => 6,
    };
    println!(
        "{:>4} {:>18} {:>18} {:>10}",
        "p", "Gate-based (ns)", "Full GRAPE (ns)", "ratio"
    );
    for p in 1..=max_p {
        let circuit = qaoa_circuit(&graph, p);
        let params = reference_parameters(2 * p);
        let gate = compiler
            .compile(&circuit, &params, Strategy::GateBased)
            .unwrap();
        let grape = compiler
            .compile(&circuit, &params, Strategy::FullGrape)
            .unwrap();
        println!(
            "{:>4} {:>18.1} {:>18.1} {:>9.1}x",
            p,
            gate.pulse_duration_ns,
            grape.pulse_duration_ns,
            gate.pulse_duration_ns / grape.pulse_duration_ns.max(1e-9)
        );
    }
    println!(
        "\nPaper reference (Figure 2): ratio grows from 2.0x at p=1 to 12.0x at p=6, with the"
    );
    println!("GRAPE time asymptoting below 50 ns while the gate-based time grows linearly in p.");
    persist_if_requested(&compiler);
}
