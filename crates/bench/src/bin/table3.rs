//! Table 3: gate-based runtimes of the 32 QAOA MAXCUT benchmarks.

use vqc_apps::qaoa::table3_benchmarks;
use vqc_bench::{print_header, Effort};
use vqc_circuit::mapping::map_to_topology;
use vqc_circuit::timing::{critical_path_ns, GateTimes};
use vqc_circuit::{passes, Topology};

fn main() {
    let effort = Effort::from_env();
    print_header("Table 3: QAOA MAXCUT gate-based runtimes", effort);
    let times = GateTimes::default();
    println!(
        "{:>4} {:>18} {:>18} {:>18} {:>18}",
        "p", "3-Regular N=6", "Erdos-Renyi N=6", "3-Regular N=8", "Erdos-Renyi N=8"
    );
    let benchmarks = table3_benchmarks();
    for p in 1..=8 {
        let mut row = Vec::new();
        for &(n, regular) in &[(6usize, true), (6, false), (8, true), (8, false)] {
            let benchmark = benchmarks
                .iter()
                .find(|b| b.num_nodes == n && b.three_regular == regular && b.p == p)
                .expect("all 32 benchmarks are enumerated");
            let optimized = passes::optimize(&benchmark.circuit());
            let cols = n / 2;
            let mapped = map_to_topology(&optimized, &Topology::grid(2, cols))
                .expect("QAOA circuits route onto the grid");
            row.push(critical_path_ns(&mapped.circuit, &times));
        }
        println!(
            "{:>4} {:>15.0} ns {:>15.0} ns {:>15.0} ns {:>15.0} ns",
            p, row[0], row[1], row[2], row[3]
        );
    }
    println!("\nPaper reference (Table 3), p=1 row: 113, 84, 163, 157 ns; p=8 row: 668, 584, 1356, 1209 ns.");
    println!("The linear growth in p and the 3-Regular > Erdos-Renyi ordering are the properties to compare.");
}
