//! Figure 5: VQE pulse speedup factors (relative to gate-based compilation) for strict
//! partial, flexible partial, and full GRAPE compilation.

use vqc_apps::uccsd::uccsd_circuit;
use vqc_bench::{
    compile_all_strategies, effort_runtime, persist_if_requested, print_header,
    reference_parameters, Effort,
};

fn main() {
    let effort = Effort::from_env();
    print_header("Figure 5: VQE pulse speedup factors", effort);
    let compiler = effort_runtime(effort);
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "Molecule", "Gate", "Strict", "Flexible", "GRAPE"
    );
    for molecule in effort.vqe_molecules() {
        let circuit = uccsd_circuit(molecule);
        let params = reference_parameters(molecule.num_parameters());
        let reports = compile_all_strategies(&compiler, &molecule.to_string(), &circuit, &params);
        println!(
            "{:<10} {:>11.2}x {:>11.2}x {:>11.2}x {:>11.2}x\n",
            molecule.to_string(),
            reports[0].pulse_speedup(),
            reports[1].pulse_speedup(),
            reports[2].pulse_speedup(),
            reports[3].pulse_speedup()
        );
    }
    println!(
        "Paper reference (Figure 5): BeH2/NaH speedups ~2x for GRAPE with strict recovering ~95%"
    );
    println!("and flexible ~99% of it; H2O ~1.4x. Expect the same ordering here.");
    persist_if_requested(&compiler);
}
