//! Figure 6: QAOA pulse durations vs p under the four compilation strategies, for
//! 3-regular and Erdős–Rényi graphs on 6 and 8 nodes.

use vqc_bench::{
    compile_all_strategies, effort_runtime, persist_if_requested, print_header, qaoa_instance,
    reference_parameters, Effort,
};

fn main() {
    let effort = Effort::from_env();
    print_header("Figure 6: QAOA pulse durations vs p", effort);
    let compiler = effort_runtime(effort);
    let sizes: Vec<usize> = match effort {
        Effort::Fast => vec![6],
        _ => vec![6, 8],
    };
    for n in sizes {
        for &three_regular in &[true, false] {
            let family = if three_regular {
                "3-Regular"
            } else {
                "Erdos-Renyi"
            };
            println!("--- {family} N={n} ---");
            for &p in &effort.qaoa_rounds() {
                let instance = qaoa_instance(n, three_regular, p);
                let params = reference_parameters(2 * p);
                compile_all_strategies(&compiler, &instance.name(), &instance.circuit(), &params);
            }
            println!();
        }
    }
    println!("Paper reference (Figure 6): gate-based grows linearly in p; strict gives a modest");
    println!("improvement; flexible essentially matches full GRAPE (average 2.6x for N=6, 1.8x for N=8).");
    persist_if_requested(&compiler);
}
