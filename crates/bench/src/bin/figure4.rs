//! Figure 4: GRAPE error vs ADAM learning rate for single-angle LiH subcircuits, at
//! several values of the angle argument — demonstrating that the best hyperparameter
//! region is robust to the angle, which is what makes flexible partial compilation's
//! pre-computed tuning valid.

use vqc_apps::molecules::Molecule;
use vqc_apps::uccsd::uccsd_circuit;
use vqc_bench::{print_header, Effort};
use vqc_circuit::passes;
use vqc_circuit::timing::{critical_path_ns, GateTimes};
use vqc_core::blocking::{aggregate_blocks_with_cap, ParameterPolicy};
use vqc_pulse::grape::try_optimize_pulse;
use vqc_pulse::DeviceModel;
use vqc_sim::circuit_unitary;

fn main() {
    let effort = Effort::from_env();
    print_header(
        "Figure 4: GRAPE error vs learning rate, LiH single-angle subcircuits",
        effort,
    );

    let prepared = passes::optimize(&uccsd_circuit(Molecule::LiH));
    let blocks = aggregate_blocks_with_cap(
        &prepared,
        4,
        ParameterPolicy::AtMostOne,
        effort.compiler_options().max_block_ops,
    );
    let single_angle: Vec<_> = blocks
        .iter()
        .filter(|b| b.parameters.len() == 1 && b.len() > 3)
        .collect();
    let picks = [0usize, single_angle.len().saturating_sub(1)];
    let learning_rates = [0.02, 0.05, 0.1, 0.2, 0.4];
    let angles = [0.3, 1.1, 2.4];
    let base = effort.compiler_options();

    for (which, &index) in picks.iter().enumerate() {
        let Some(block) = single_angle.get(index) else {
            continue;
        };
        let subcircuit = block.to_circuit(&prepared);
        let duration = critical_path_ns(&subcircuit.bind(&vec![0.5; 92]), &GateTimes::default());
        println!(
            "subcircuit {} ({} ops, {} qubits, {:.1} ns budget):",
            which,
            block.len(),
            block.qubits.len(),
            duration
        );
        println!("learning rate final infidelity per angle argument");
        for &lr in &learning_rates {
            let mut row = format!("{:>12.2} ", lr);
            for &theta in &angles {
                let bound = subcircuit.bind(&vec![theta; 92]);
                let target = circuit_unitary(&bound);
                let device = DeviceModel::qubits_line(subcircuit.num_qubits());
                let options = base.grape.with_hyperparameters(lr, 0.999);
                let infidelity = try_optimize_pulse(&target, &device, duration, &options)
                    .map(|r| r.infidelity)
                    .unwrap_or(1.0);
                row.push_str(&format!("  θ={theta:>3.1}: {infidelity:>9.2e}"));
            }
            println!("{row}");
        }
        println!();
    }
    println!(
        "Paper reference (Figure 4): the learning-rate range achieving the lowest error is the"
    );
    println!(
        "same for every permutation of the angle argument — the row minima line up by column."
    );
}
