//! Table 5: GRAPE speedups under standard vs "more realistic" settings (Section 8.3):
//! 1 GSa/s sampling, qutrit leakage, and aggressive pulse regularization.

use vqc_apps::graphs::Graph;
use vqc_apps::molecules::Molecule;
use vqc_apps::qaoa::qaoa_circuit;
use vqc_apps::uccsd::uccsd_circuit;
use vqc_bench::{print_header, reference_parameters, Effort};
use vqc_circuit::passes;
use vqc_circuit::timing::{critical_path_ns, GateTimes};
use vqc_pulse::minimum_time::{minimum_pulse_time, MinimumTimeOptions};
use vqc_pulse::realistic::RealisticSettings;
use vqc_pulse::DeviceModel;
use vqc_sim::circuit_unitary;

fn grape_time(
    circuit: &vqc_circuit::Circuit,
    settings: RealisticSettings,
    effort: Effort,
    upper: f64,
) -> (f64, bool) {
    let device = settings.apply_to_device(&DeviceModel::qubits_line(circuit.num_qubits()));
    let mut grape = settings.apply_to_options(&effort.compiler_options().grape);
    // Leakage + regularization make the target fidelity harder to hit exactly; the
    // paper's point is the relative speedup, so accept a slightly looser target.
    grape.target_infidelity = grape.target_infidelity.max(3e-2);
    let search = MinimumTimeOptions::new(0.0, upper).with_precision(
        effort
            .compiler_options()
            .search_precision_ns
            .max(settings.dt_ns()),
    );
    let target = circuit_unitary(circuit);
    match minimum_pulse_time(&target, &device, &search, &grape) {
        Ok(result) => (result.duration_ns, result.converged),
        Err(_) => (upper, false),
    }
}

fn report(name: &str, circuit: &vqc_circuit::Circuit, effort: Effort) {
    let times = GateTimes::default();
    let gate_ns = critical_path_ns(circuit, &times);
    for (label, settings) in [
        ("standard", RealisticSettings::standard()),
        ("realistic", RealisticSettings::realistic()),
    ] {
        // Under 1 GSa/s sampling the gate-based baseline also coarsens to whole-ns
        // pulses, mirroring the larger absolute times in the paper's realistic row.
        let effective_gate_ns = if settings.sample_rate_gsa < 2.0 {
            circuit.len() as f64 * settings.dt_ns().max(1.0) + gate_ns
        } else {
            gate_ns
        };
        let (grape_ns, converged) = grape_time(circuit, settings, effort, effective_gate_ns);
        println!(
            "  {:<22} {:<10} gate {:>8.1} ns -> GRAPE {:>8.1} ns  ({:.1}x){}",
            name,
            label,
            effective_gate_ns,
            grape_ns,
            effective_gate_ns / grape_ns.max(1e-9),
            if converged { "" } else { "  [fallback]" }
        );
    }
}

fn main() {
    let effort = Effort::from_env();
    print_header("Table 5: standard vs realistic GRAPE settings", effort);

    // H2 VQE benchmark (2 qubits).
    let h2 = passes::optimize(&uccsd_circuit(Molecule::H2));
    let h2_bound = h2.bind(&reference_parameters(Molecule::H2.num_parameters()));
    report("H2 VQE", &h2_bound, effort);

    // Erdos-Renyi N=3 QAOA benchmark (3 qubits), as in the paper's Table 5.
    let graph = Graph::erdos_renyi(3, 0.5, 11);
    let qaoa = passes::optimize(&qaoa_circuit(&graph, 1));
    let qaoa_bound = qaoa.bind(&reference_parameters(2));
    report("Erdos-Renyi N=3 QAOA", &qaoa_bound, effort);

    println!(
        "\nPaper reference (Table 5): H2 11.4x standard vs 8.8x realistic; QAOA 4.5x vs 3.0x."
    );
    println!("The property to compare: realistic settings reduce but do not eliminate the GRAPE speedup.");
}
