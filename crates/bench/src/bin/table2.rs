//! Table 2: the VQE-UCCSD benchmark circuits (width, parameter count, gate-based
//! runtime), after optimization, parallel scheduling, and nearest-neighbour mapping.

use vqc_apps::molecules::Molecule;
use vqc_apps::uccsd::uccsd_circuit;
use vqc_bench::{print_header, Effort};
use vqc_circuit::mapping::map_to_topology;
use vqc_circuit::timing::{critical_path_ns, GateTimes};
use vqc_circuit::{passes, Topology};

fn main() {
    let effort = Effort::from_env();
    print_header("Table 2: VQE-UCCSD benchmark circuits", effort);
    println!(
        "{:<10} {:>7} {:>9} {:>12} {:>22} {:>20}",
        "Molecule", "Qubits", "# Params", "Gates", "Gate-based runtime (ns)", "Paper runtime (ns)"
    );
    let times = GateTimes::default();
    for molecule in Molecule::all() {
        let circuit = uccsd_circuit(molecule);
        let optimized = passes::optimize(&circuit);
        // Map to a nearest-neighbour grid, as the paper does with Qiskit's mapper.
        let cols = molecule.num_qubits().div_ceil(2);
        let mapped = map_to_topology(&optimized, &Topology::grid(2, cols))
            .expect("benchmark circuits route onto the grid");
        let runtime = critical_path_ns(&mapped.circuit, &times);
        println!(
            "{:<10} {:>7} {:>9} {:>12} {:>22.1} {:>20.1}",
            molecule.to_string(),
            molecule.num_qubits(),
            molecule.num_parameters(),
            mapped.circuit.len(),
            runtime,
            molecule.paper_gate_runtime_ns()
        );
    }
    println!(
        "\nRuntimes are indexed to the Table-1 pulse durations; absolute values differ from the"
    );
    println!("paper because the ansatz generator is a structural substitute for Qiskit+PySCF (see DESIGN.md).");
}
