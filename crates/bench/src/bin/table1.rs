//! Table 1: the compiler's gate set and per-gate pulse durations.
//!
//! The lookup-table durations are constants of `vqc_circuit::timing::GateTimes`; this
//! binary additionally re-derives each duration with GRAPE's minimum-time search
//! against the Appendix-A device model, which is how the paper obtained them.

use vqc_bench::{print_header, Effort};
use vqc_circuit::timing::GateTimes;
use vqc_linalg::Matrix;
use vqc_pulse::minimum_time::{minimum_pulse_time, MinimumTimeOptions};
use vqc_pulse::DeviceModel;
use vqc_sim::gates;

fn grape_duration(target: &Matrix, qubits: usize, upper: f64, effort: Effort) -> (f64, bool) {
    let device = DeviceModel::qubits_line(qubits);
    let options = effort.compiler_options();
    let search = MinimumTimeOptions::new(0.0, upper).with_precision(options.search_precision_ns);
    match minimum_pulse_time(target, &device, &search, &options.grape) {
        Ok(result) => (result.duration_ns, result.converged),
        Err(_) => (upper, false),
    }
}

fn main() {
    let effort = Effort::from_env();
    print_header("Table 1: gate set and pulse durations", effort);
    let times = GateTimes::default();
    println!(
        "{:<8} {:>14} {:>22}",
        "Gate", "Table 1 (ns)", "GRAPE-derived (ns)"
    );

    let rows: Vec<(&str, f64, Matrix, usize)> = vec![
        ("Rz(pi)", times.rz_ns, gates::rz(std::f64::consts::PI), 1),
        ("Rx(pi)", times.rx_ns, gates::rx(std::f64::consts::PI), 1),
        ("H", times.h_ns, gates::h(), 1),
        ("CX", times.cx_ns, gates::cx(), 2),
        ("SWAP", times.swap_ns, gates::swap(), 2),
    ];
    for (name, table_ns, target, qubits) in rows {
        let upper = (table_ns * 2.0).max(2.0);
        let (grape_ns, converged) = grape_duration(&target, qubits, upper, effort);
        println!(
            "{:<8} {:>14.1} {:>20.1}{}",
            name,
            table_ns,
            grape_ns,
            if converged {
                ""
            } else {
                "  (did not converge; upper bound shown)"
            }
        );
    }
    println!("\nPaper reference (Table 1): Rz 0.4, Rx 2.5, H 1.4, CX 3.8, SWAP 7.4 ns");
}
