//! Figure 7: compilation-latency reduction of flexible partial compilation relative to
//! full GRAPE compilation, per benchmark.

use vqc_apps::uccsd::uccsd_circuit;
use vqc_bench::{
    effort_runtime, persist_if_requested, print_header, qaoa_instance, reference_parameters, Effort,
};
use vqc_core::Strategy;

fn main() {
    let effort = Effort::from_env();
    print_header(
        "Figure 7: compilation latency reduction (full GRAPE / flexible)",
        effort,
    );
    let compiler = effort_runtime(effort);

    let mut rows: Vec<(String, vqc_circuit::Circuit, Vec<f64>)> = Vec::new();
    for molecule in effort.vqe_molecules() {
        rows.push((
            molecule.to_string(),
            uccsd_circuit(molecule),
            reference_parameters(molecule.num_parameters()),
        ));
    }
    let qaoa_p = *effort.qaoa_rounds().last().unwrap_or(&1);
    for &(n, regular, label) in &[(6usize, true, "3Reg N=6"), (6, false, "Erdos N=6")] {
        let instance = qaoa_instance(n, regular, qaoa_p);
        rows.push((
            label.to_string(),
            instance.circuit(),
            reference_parameters(2 * qaoa_p),
        ));
    }

    println!(
        "{:<12} {:>22} {:>22} {:>12}",
        "Benchmark", "Full GRAPE runtime (s)", "Flexible runtime (s)", "Reduction"
    );
    for (name, circuit, params) in rows {
        let full = compiler
            .compile(&circuit, &params, Strategy::FullGrape)
            .unwrap();
        let flexible = compiler
            .compile(&circuit, &params, Strategy::FlexiblePartial)
            .unwrap();
        let reduction = full.runtime.reduction_factor_vs(&flexible.runtime);
        println!(
            "{:<12} {:>22.1} {:>22.1} {:>11.1}x   (flexible pre-compute: {:.1} s)",
            name,
            full.runtime.estimated_seconds,
            flexible.runtime.estimated_seconds,
            reduction,
            flexible.precompute.estimated_seconds
        );
    }
    println!("\nLatencies are the estimated per-variational-iteration compilation times under the");
    println!("paper-calibrated latency model; Figure 7 of the paper reports reductions of 10-100x");
    println!(
        "(e.g. 3-regular graphs ~80x), with about an hour of pre-compute for flexible tuning."
    );
    persist_if_requested(&compiler);
}
