//! Table 4: pulse durations for every benchmark under the four compilation strategies.
//!
//! This is the paper's headline table. At the default `fast` effort level only the
//! smaller benchmarks are compiled (larger ones cost hours of GRAPE time); raise
//! `VQC_EFFORT` to widen coverage.

use vqc_apps::uccsd::uccsd_circuit;
use vqc_bench::{
    compile_all_strategies, effort_runtime, persist_if_requested, print_header, qaoa_instance,
    reference_parameters, Effort,
};

fn main() {
    let effort = Effort::from_env();
    print_header("Table 4: pulse durations by compilation strategy", effort);
    let compiler = effort_runtime(effort);

    println!("VQE-UCCSD benchmarks:");
    for molecule in effort.vqe_molecules() {
        let circuit = uccsd_circuit(molecule);
        let params = reference_parameters(molecule.num_parameters());
        let reports = compile_all_strategies(&compiler, &molecule.to_string(), &circuit, &params);
        let row: Vec<String> = reports
            .iter()
            .map(|r| format!("{:.1}", r.pulse_duration_ns))
            .collect();
        println!(
            "  -> {:<10} gate {} | strict {} | flexible {} | GRAPE {}\n",
            molecule.to_string(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }

    println!("QAOA MAXCUT benchmarks:");
    for &three_regular in &[true, false] {
        for &n in &[6usize, 8] {
            if matches!(effort, Effort::Fast) && n == 8 {
                println!("  (N=8 skipped at fast effort; set VQC_EFFORT=standard or full)");
                continue;
            }
            for &p in &effort.qaoa_rounds() {
                let instance = qaoa_instance(n, three_regular, p);
                let circuit = instance.circuit();
                let params = reference_parameters(2 * p);
                compile_all_strategies(&compiler, &instance.name(), &circuit, &params);
            }
        }
    }

    println!("\nPaper reference (Table 4, ns): e.g. H2 35.3 / 15.0 / 5.0 / 3.1; LiH 871 / 307 / 84 / 19;");
    println!("3-Regular N=6 p=1: 113 / 91 / 72 / 72. Compare orderings and speedup factors, not absolutes.");
    persist_if_requested(&compiler);
}
