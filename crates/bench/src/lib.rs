//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper. They all
//! read the `VQC_EFFORT` environment variable (`fast` — the default, `standard`, or
//! `full`) to decide how much GRAPE work to spend; `fast` regenerates the qualitative
//! shape of every result in minutes, while `full` approaches the paper's settings (and
//! its enormous compute bill). The raw measurements behind EXPERIMENTS.md were produced
//! with these binaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::Instant;
use vqc_apps::molecules::Molecule;
use vqc_apps::qaoa::QaoaBenchmark;
use vqc_core::{CompilationReport, CompilerOptions, Strategy};
use vqc_runtime::{CompilationRuntime, EvictionPolicy, RuntimeOptions};

/// How much compute a harness run is allowed to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Coarse GRAPE settings and reduced benchmark subsets; minutes of compute.
    Fast,
    /// Intermediate settings.
    Standard,
    /// Paper-scale settings; expect very long runtimes.
    Full,
}

impl Effort {
    /// Reads the effort level from the `VQC_EFFORT` environment variable.
    pub fn from_env() -> Effort {
        match std::env::var("VQC_EFFORT")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "full" | "paper" => Effort::Full,
            "standard" | "std" => Effort::Standard,
            _ => Effort::Fast,
        }
    }

    /// The compiler options associated with this effort level.
    pub fn compiler_options(&self) -> CompilerOptions {
        match self {
            Effort::Fast => CompilerOptions::fast(),
            Effort::Standard => CompilerOptions::standard(),
            Effort::Full => CompilerOptions::paper(),
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Effort::Fast => "fast",
            Effort::Standard => "standard",
            Effort::Full => "full",
        }
    }

    /// The VQE molecules exercised at this effort level (larger molecules cost hours of
    /// GRAPE time and are only attempted at higher effort).
    pub fn vqe_molecules(&self) -> Vec<Molecule> {
        match self {
            Effort::Fast => vec![Molecule::H2, Molecule::LiH],
            Effort::Standard => vec![Molecule::H2, Molecule::LiH, Molecule::BeH2],
            Effort::Full => Molecule::all().to_vec(),
        }
    }

    /// The QAOA `p` values exercised for pulse-level (GRAPE) studies at this effort
    /// level. Table 3 (gate-based only) always covers `p = 1..=8`.
    pub fn qaoa_rounds(&self) -> Vec<usize> {
        match self {
            Effort::Fast => vec![1, 2],
            Effort::Standard => vec![1, 3, 5],
            Effort::Full => vec![1, 2, 3, 4, 5, 6, 7, 8],
        }
    }
}

/// Prints the standard harness header: which experiment, which effort level.
pub fn print_header(experiment: &str, effort: Effort) {
    println!("=== {experiment} (effort: {}) ===", effort.label());
    println!(
        "    set VQC_EFFORT=fast|standard|full to trade fidelity of the reproduction against compute\n"
    );
}

/// Builds the concurrent compilation runtime the harness binaries share, from
/// explicit compiler options.
///
/// Environment knobs:
///
/// * `VQC_WORKERS=<n>` — worker count (default: available parallelism, capped at
///   8), honored by `RuntimeOptions::default()` itself so tests and examples pick
///   it up too.
/// * `VQC_QUEUE_DEPTH=<n>` — admission-queue depth of the service front-end
///   (default 64): at most `n` submissions may be outstanding before backpressure
///   applies. Honored by `ServiceOptions::default()`.
/// * `VQC_BACKPRESSURE=block|reject|shed` — what `submit` does against a full
///   queue (default: block the submitting thread; `reject` fails fast; `shed`
///   drops the lowest-priority not-yet-started submission).
/// * `VQC_CACHE_BLOCKS=<n>` — bound the block cache to `n` entries per shard
///   (default: unbounded); the eviction policy decides what a full shard drops.
/// * `VQC_EVICTION=cost|hit|fifo` — eviction policy for bounded shards (default:
///   cost-aware, i.e. the cheapest-to-recompute entry leaves first; `hit` weights
///   cost by observed reuse).
/// * `VQC_SNAPSHOT=<path>` — warm-start from (and persist to) this cache snapshot;
///   re-running a harness binary then skips all GRAPE work its previous run already
///   paid for. Pair with [`persist_if_requested`] at the end of `main`.
///
/// Garbage values fall back to the defaults.
pub fn runtime_with_options(options: CompilerOptions) -> CompilationRuntime {
    let mut runtime_options = RuntimeOptions::default();
    if let Ok(blocks) = std::env::var("VQC_CACHE_BLOCKS") {
        if let Ok(blocks) = blocks.parse::<usize>() {
            runtime_options.cache.max_blocks_per_shard = Some(blocks.max(1));
        }
    }
    if let Ok(policy) = std::env::var("VQC_EVICTION") {
        if let Some(policy) = EvictionPolicy::parse(&policy) {
            runtime_options.cache.eviction = policy;
        }
    }
    if let Ok(path) = std::env::var("VQC_SNAPSHOT") {
        match CompilationRuntime::with_warm_start(options.clone(), runtime_options.clone(), &path) {
            Ok(runtime) => {
                println!(
                    "    warm-started {} cached blocks / {} tunings from {path}\n",
                    vqc_core::PulseCache::num_blocks(runtime.cache()),
                    vqc_core::PulseCache::num_tunings(runtime.cache()),
                );
                return runtime;
            }
            Err(error) => println!("    (snapshot {path} not loaded: {error}; starting cold)\n"),
        }
    }
    CompilationRuntime::new(options, runtime_options)
}

/// [`runtime_with_options`] at an effort level's standard compiler options.
pub fn effort_runtime(effort: Effort) -> CompilationRuntime {
    runtime_with_options(effort.compiler_options())
}

/// Writes the runtime's cache to the `VQC_SNAPSHOT` path, if one is configured.
pub fn persist_if_requested(runtime: &CompilationRuntime) {
    if let Ok(path) = std::env::var("VQC_SNAPSHOT") {
        match runtime.save_snapshot(&path) {
            Ok(()) => println!("\nsaved pulse-cache snapshot to {path}"),
            Err(error) => println!("\nfailed to save pulse-cache snapshot to {path}: {error}"),
        }
    }
}

/// Compiles one circuit under every strategy on the shared runtime (each strategy's
/// independent blocks run in parallel on the worker pool) and returns the reports in
/// [gate-based, strict, flexible, full-GRAPE] order, printing a one-line summary per
/// strategy as it goes.
///
/// Strategies are compiled in paper order rather than as one concurrent batch on
/// purpose: the strategies share the pulse cache, so batching them together would
/// make the *attribution* of GRAPE latency (strict's pre-compute vs full GRAPE's
/// runtime) depend on which worker happens to lead a shared block's flight. Batching
/// belongs to same-strategy workloads — see [`compile_iteration_batch`].
pub fn compile_all_strategies(
    runtime: &CompilationRuntime,
    name: &str,
    circuit: &vqc_circuit::Circuit,
    params: &[f64],
) -> Vec<CompilationReport> {
    let mut reports = Vec::new();
    for strategy in Strategy::all() {
        let started = Instant::now();
        let report = runtime
            .compile(circuit, params, strategy)
            // audit:allow(unwrap): benchmark fixtures are known-compilable; aborting the run on failure is the right outcome
            .expect("benchmark circuits compile");
        println!(
            "  {name:<28} {strategy:<17} pulse {:>9.1} ns  speedup {:>5.2}x  (compile wall {:>6.1} s)",
            report.pulse_duration_ns,
            report.pulse_speedup(),
            started.elapsed().as_secs_f64()
        );
        reports.push(report);
    }
    reports
}

/// Compiles one circuit at many parameter bindings under one strategy as a single
/// batch — the variational-loop workload the runtime's cross-request cache reuse is
/// built for. Returns per-iteration reports in input order.
pub fn compile_iteration_batch(
    runtime: &CompilationRuntime,
    circuit: &vqc_circuit::Circuit,
    parameter_sets: &[Vec<f64>],
    strategy: Strategy,
) -> Vec<CompilationReport> {
    runtime
        .compile_iterations(circuit, parameter_sets, strategy)
        .into_iter()
        // audit:allow(unwrap): benchmark fixtures are known-compilable; aborting the run on failure is the right outcome
        .map(|report| report.expect("benchmark circuits compile"))
        .collect()
}

/// A deterministic parameter binding of the requested length, used whenever the paper
/// says "a random parametrization was set".
pub fn reference_parameters(count: usize) -> Vec<f64> {
    (0..count)
        .map(|i| 0.37 + 0.61 * (i as f64 * 1.7).sin())
        .collect()
}

/// The QAOA benchmark instance (graph family, size, rounds) used by the pulse-level
/// tables at a given effort level.
pub fn qaoa_instance(num_nodes: usize, three_regular: bool, p: usize) -> QaoaBenchmark {
    QaoaBenchmark {
        num_nodes,
        p,
        three_regular,
        seed: 17 + num_nodes as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_parsing_defaults_to_fast() {
        // Environment-independent checks of the mapping.
        assert_eq!(Effort::Fast.label(), "fast");
        assert_eq!(Effort::Full.vqe_molecules().len(), 5);
        assert!(Effort::Fast.vqe_molecules().len() < Effort::Full.vqe_molecules().len());
        assert!(Effort::Fast.qaoa_rounds().len() < Effort::Full.qaoa_rounds().len());
    }

    #[test]
    fn reference_parameters_are_deterministic() {
        assert_eq!(reference_parameters(5), reference_parameters(5));
        assert_eq!(reference_parameters(3).len(), 3);
    }

    #[test]
    fn qaoa_instance_matches_table3_seeding() {
        let instance = qaoa_instance(6, true, 4);
        assert_eq!(instance.seed, 23);
        assert_eq!(instance.name(), "3-Regular N=6 p=4");
    }
}
