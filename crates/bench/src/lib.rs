//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper. They all
//! read the `VQC_EFFORT` environment variable (`fast` — the default, `standard`, or
//! `full`) to decide how much GRAPE work to spend; `fast` regenerates the qualitative
//! shape of every result in minutes, while `full` approaches the paper's settings (and
//! its enormous compute bill). The raw measurements behind EXPERIMENTS.md were produced
//! with these binaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::Instant;
use vqc_apps::molecules::Molecule;
use vqc_apps::qaoa::QaoaBenchmark;
use vqc_core::{CompilationReport, CompilerOptions, PartialCompiler, Strategy};

/// How much compute a harness run is allowed to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Coarse GRAPE settings and reduced benchmark subsets; minutes of compute.
    Fast,
    /// Intermediate settings.
    Standard,
    /// Paper-scale settings; expect very long runtimes.
    Full,
}

impl Effort {
    /// Reads the effort level from the `VQC_EFFORT` environment variable.
    pub fn from_env() -> Effort {
        match std::env::var("VQC_EFFORT").unwrap_or_default().to_lowercase().as_str() {
            "full" | "paper" => Effort::Full,
            "standard" | "std" => Effort::Standard,
            _ => Effort::Fast,
        }
    }

    /// The compiler options associated with this effort level.
    pub fn compiler_options(&self) -> CompilerOptions {
        match self {
            Effort::Fast => CompilerOptions::fast(),
            Effort::Standard => CompilerOptions::standard(),
            Effort::Full => CompilerOptions::paper(),
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Effort::Fast => "fast",
            Effort::Standard => "standard",
            Effort::Full => "full",
        }
    }

    /// The VQE molecules exercised at this effort level (larger molecules cost hours of
    /// GRAPE time and are only attempted at higher effort).
    pub fn vqe_molecules(&self) -> Vec<Molecule> {
        match self {
            Effort::Fast => vec![Molecule::H2, Molecule::LiH],
            Effort::Standard => vec![Molecule::H2, Molecule::LiH, Molecule::BeH2],
            Effort::Full => Molecule::all().to_vec(),
        }
    }

    /// The QAOA `p` values exercised for pulse-level (GRAPE) studies at this effort
    /// level. Table 3 (gate-based only) always covers `p = 1..=8`.
    pub fn qaoa_rounds(&self) -> Vec<usize> {
        match self {
            Effort::Fast => vec![1, 2],
            Effort::Standard => vec![1, 3, 5],
            Effort::Full => vec![1, 2, 3, 4, 5, 6, 7, 8],
        }
    }
}

/// Prints the standard harness header: which experiment, which effort level.
pub fn print_header(experiment: &str, effort: Effort) {
    println!("=== {experiment} (effort: {}) ===", effort.label());
    println!(
        "    set VQC_EFFORT=fast|standard|full to trade fidelity of the reproduction against compute\n"
    );
}

/// Compiles one circuit under every strategy and returns the reports in
/// [gate-based, strict, flexible, full-GRAPE] order, printing a one-line summary per
/// strategy as it goes.
pub fn compile_all_strategies(
    compiler: &PartialCompiler,
    name: &str,
    circuit: &vqc_circuit::Circuit,
    params: &[f64],
) -> Vec<CompilationReport> {
    let mut reports = Vec::new();
    for strategy in Strategy::all() {
        let started = Instant::now();
        let report = compiler
            .compile(circuit, params, strategy)
            .expect("benchmark circuits compile");
        println!(
            "  {name:<28} {strategy:<17} pulse {:>9.1} ns  speedup {:>5.2}x  (compile wall {:>6.1} s)",
            report.pulse_duration_ns,
            report.pulse_speedup(),
            started.elapsed().as_secs_f64()
        );
        reports.push(report);
    }
    reports
}

/// A deterministic parameter binding of the requested length, used whenever the paper
/// says "a random parametrization was set".
pub fn reference_parameters(count: usize) -> Vec<f64> {
    (0..count).map(|i| 0.37 + 0.61 * (i as f64 * 1.7).sin()).collect()
}

/// The QAOA benchmark instance (graph family, size, rounds) used by the pulse-level
/// tables at a given effort level.
pub fn qaoa_instance(num_nodes: usize, three_regular: bool, p: usize) -> QaoaBenchmark {
    QaoaBenchmark {
        num_nodes,
        p,
        three_regular,
        seed: 17 + num_nodes as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_parsing_defaults_to_fast() {
        // Environment-independent checks of the mapping.
        assert_eq!(Effort::Fast.label(), "fast");
        assert_eq!(Effort::Full.vqe_molecules().len(), 5);
        assert!(Effort::Fast.vqe_molecules().len() < Effort::Full.vqe_molecules().len());
        assert!(Effort::Fast.qaoa_rounds().len() < Effort::Full.qaoa_rounds().len());
    }

    #[test]
    fn reference_parameters_are_deterministic() {
        assert_eq!(reference_parameters(5), reference_parameters(5));
        assert_eq!(reference_parameters(3).len(), 3);
    }

    #[test]
    fn qaoa_instance_matches_table3_seeding() {
        let instance = qaoa_instance(6, true, 4);
        assert_eq!(instance.seed, 23);
        assert_eq!(instance.name(), "3-Regular N=6 p=4");
    }
}
