//! Ablation benchmarks for the design choices called out in DESIGN.md: GRAPE time-step
//! granularity, binary-search precision, hyperparameter grid size, and blocking width.
//! Each group varies exactly one knob on the same small workload so the cost impact is
//! directly comparable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vqc_apps::molecules::Molecule;
use vqc_apps::uccsd::uccsd_circuit;
use vqc_circuit::passes;
use vqc_core::blocking::{aggregate_blocks_with_cap, ParameterPolicy};
use vqc_core::hyperparam::{tune_hyperparameters, HyperparameterGrid};
use vqc_pulse::grape::{optimize_pulse, GrapeOptions};
use vqc_pulse::minimum_time::{minimum_pulse_time, MinimumTimeOptions};
use vqc_pulse::DeviceModel;
use vqc_sim::gates;

fn fast(max_iterations: usize) -> GrapeOptions {
    let mut options = GrapeOptions::fast();
    options.max_iterations = max_iterations;
    options.target_infidelity = 2e-2;
    options
}

fn ablation_timestep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_timestep");
    group.sample_size(10);
    let device = DeviceModel::qubits_line(1);
    for dt in [1.0f64, 0.5, 0.25] {
        let mut options = fast(60);
        options.dt_ns = dt;
        group.bench_function(format!("grape_h_dt_{dt}"), |b| {
            b.iter(|| {
                optimize_pulse(
                    black_box(&gates::h()),
                    black_box(&device),
                    2.0,
                    black_box(&options),
                )
            })
        });
    }
    group.finish();
}

fn ablation_binary_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_binary_search");
    group.sample_size(10);
    let device = DeviceModel::qubits_line(1);
    for precision in [2.0f64, 1.0, 0.5] {
        let options = fast(60);
        let search = MinimumTimeOptions::new(0.0, 4.0).with_precision(precision);
        group.bench_function(format!("min_time_x_precision_{precision}"), |b| {
            b.iter(|| {
                minimum_pulse_time(
                    black_box(&gates::x()),
                    black_box(&device),
                    black_box(&search),
                    black_box(&options),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn ablation_hyperparam_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hyperparam");
    group.sample_size(10);
    let device = DeviceModel::qubits_line(2);
    let mut circuit = vqc_circuit::Circuit::new(2);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.rz(1, 0.8);
    circuit.cx(0, 1);
    for (label, grid) in [
        (
            "grid_3",
            HyperparameterGrid {
                learning_rates: vec![0.05, 0.15, 0.3],
                decay_rates: vec![0.999],
            },
        ),
        (
            "grid_6",
            HyperparameterGrid {
                learning_rates: vec![0.05, 0.15, 0.3],
                decay_rates: vec![0.995, 0.999],
            },
        ),
    ] {
        let options = fast(60);
        group.bench_function(label, |b| {
            b.iter(|| {
                tune_hyperparameters(
                    black_box(&circuit),
                    black_box(&device),
                    10.0,
                    black_box(&options),
                    black_box(&grid),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn ablation_blocking_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_blocking");
    group.sample_size(20);
    let prepared = passes::optimize(&uccsd_circuit(Molecule::BeH2));
    for width in [2usize, 3, 4] {
        group.bench_function(format!("aggregate_beh2_width_{width}"), |b| {
            b.iter(|| {
                aggregate_blocks_with_cap(
                    black_box(&prepared),
                    width,
                    ParameterPolicy::AtMostOne,
                    60,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_timestep,
    ablation_binary_search,
    ablation_hyperparam_grid,
    ablation_blocking_width
);
criterion_main!(benches);
