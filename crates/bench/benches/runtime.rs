//! Benchmark of the concurrent compilation runtime against the seed's sequential
//! path on a repeated-block QAOA workload: a batch of QAOA circuits whose blocks
//! recur within each circuit and across requests. Compares sequential
//! `PulseLibrary` compilation with the sharded runtime at 1/2/4/8 workers, the LPT
//! block schedule against an unsorted drain on a heterogeneous batch, cost-aware
//! against FIFO eviction on a bounded cache under churn, the service submission
//! front-end (concurrent prioritized clients) against the synchronous batch
//! wrapper, plus a raw cache-contention microbenchmark, and writes a
//! `BENCH_runtime.json` summary next to the workspace root (including the
//! observed-vs-estimated block-cost error the runtime's cost feedback closes once
//! blocks have run, and the model→host scale the cache's `CostCalibration` fitted
//! online). Interpret worker scaling against the `host_parallelism`
//! field: on a single-CPU host all configurations legitimately tie, and the
//! comparison degenerates to measuring scheduling overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::io::Write;
use vqc_apps::graphs::Graph;
use vqc_apps::qaoa::qaoa_circuit;
use vqc_bench::reference_parameters;
use vqc_circuit::Circuit;
use vqc_core::{
    BlockKey, CachedBlock, CompilerOptions, PartialCompiler, PulseCache, PulseLibrary, Strategy,
};
use vqc_runtime::{
    CacheConfig, CompilationRuntime, CompileJob, EvictionPolicy, Priority, RuntimeOptions,
    SchedulePolicy, ShardedPulseCache, Submission, TableConfig, TelemetryOptions,
};
use vqc_transport::{Client, ClientOptions, Server, ServerOptions, SubmitPayload, WireJob};

/// GRAPE effort reduced far enough that a cold compile of the workload is
/// benchmark-sized; the cache/parallelism behavior under study is unaffected.
fn bench_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 40;
    options.grape.target_infidelity = 1e-1;
    options.search_precision_ns = 2.0;
    options
}

/// The repeated-block workload: full-GRAPE compilation of QAOA circuits on four
/// different 3-regular 6-node graphs (one batch of requests, as concurrent clients
/// would submit). Each circuit aggregates into several ≤4-qubit blocks; identical
/// edge blocks dedup through the shared cache, distinct ones GRAPE in parallel.
fn workload() -> Vec<CompileJob> {
    (0..4)
        .map(|seed| {
            let graph = Graph::three_regular(6, 20 + seed).expect("3-regular graph on 6 nodes");
            let circuit = qaoa_circuit(&graph, 1);
            let params: Vec<f64> = reference_parameters(2)
                .iter()
                .map(|p| p + 0.05 * seed as f64)
                .collect();
            CompileJob::new(circuit, params, Strategy::FullGrape)
        })
        .collect()
}

fn bench_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_compilation");
    group.sample_size(3);
    let jobs = workload();

    // Baseline: the seed path — a sequential compiler over a global-mutex library,
    // one compile call per request. Cold cache per measurement.
    group.bench_function("sequential_pulse_library", |b| {
        b.iter(|| {
            let compiler = PartialCompiler::new(bench_options());
            for job in &jobs {
                black_box(
                    compiler
                        .compile(&job.circuit, &job.params, job.strategy)
                        .unwrap(),
                );
            }
        })
    });

    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("sharded_runtime_{workers}_workers"), |b| {
            b.iter(|| {
                let runtime =
                    CompilationRuntime::new(bench_options(), RuntimeOptions::with_workers(workers));
                for report in runtime.compile_batch(&jobs) {
                    black_box(report.unwrap());
                }
            })
        });
    }
    group.finish();
}

/// A heterogeneous batch: two QAOA requests whose plans contain wide (≤4-qubit)
/// GRAPE blocks, padded with cheap 2-qubit requests. Submission order puts the
/// expensive blocks *last*, the adversarial case for an unsorted drain: the pool
/// finishes the cheap work first and then serializes on the stragglers.
fn heterogeneous_workload() -> Vec<CompileJob> {
    let params: Vec<f64> = reference_parameters(2);
    let mut jobs: Vec<CompileJob> = (0..6)
        .map(|seed| {
            let mut circuit = Circuit::new(2);
            circuit.h(0);
            circuit.cx(0, 1);
            circuit.rx(1, 0.2 + 0.17 * seed as f64);
            circuit.cx(0, 1);
            CompileJob::new(circuit, params.clone(), Strategy::FullGrape)
        })
        .collect();
    for seed in 0..2 {
        let graph = Graph::three_regular(6, 40 + seed).expect("3-regular graph on 6 nodes");
        jobs.push(CompileJob::new(
            qaoa_circuit(&graph, 1),
            params.clone(),
            Strategy::FullGrape,
        ));
    }
    jobs
}

/// LPT vs unsorted drain of the same heterogeneous batch. On a multi-core host LPT
/// wins by starting the expensive QAOA blocks immediately; on a single-CPU host the
/// two measure the same total work and the comparison records the sort's overhead.
fn bench_scheduling_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_order");
    group.sample_size(3);
    let jobs = heterogeneous_workload();
    for (name, schedule) in [
        ("lpt_4_workers", SchedulePolicy::Lpt),
        ("unsorted_4_workers", SchedulePolicy::Unsorted),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let runtime = CompilationRuntime::new(
                    bench_options(),
                    RuntimeOptions::with_workers(4).with_schedule(schedule),
                );
                for report in runtime.compile_batch(&jobs) {
                    black_box(report.unwrap());
                }
            })
        });
    }
    group.finish();
}

/// Cost-aware vs FIFO eviction on a tightly bounded cache: compile an expensive
/// batch, churn through cheap single-use requests, then re-submit the expensive
/// batch. FIFO lets the churn flush the expensive blocks (the re-submit pays GRAPE
/// again); cost-aware keeps them (the re-submit is cache hits).
fn bench_eviction_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction_policy");
    group.sample_size(3);

    let params: Vec<f64> = reference_parameters(2);
    let expensive: Vec<CompileJob> = (0..2)
        .map(|seed| {
            let graph = Graph::three_regular(6, 60 + seed).expect("3-regular graph on 6 nodes");
            CompileJob::new(qaoa_circuit(&graph, 1), params.clone(), Strategy::FullGrape)
        })
        .collect();
    let churn: Vec<CompileJob> = (0..12)
        .map(|seed| {
            let mut circuit = Circuit::new(2);
            circuit.h(0);
            circuit.cx(0, 1);
            circuit.rx(1, 0.05 + 0.13 * seed as f64);
            circuit.cx(0, 1);
            CompileJob::new(circuit, params.clone(), Strategy::FullGrape)
        })
        .collect();

    for (name, eviction) in [
        ("cost_aware_bounded", EvictionPolicy::CostAware),
        ("fifo_bounded", EvictionPolicy::Fifo),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut options = RuntimeOptions::with_workers(2);
                options.cache = CacheConfig {
                    shards: 1,
                    max_blocks_per_shard: Some(8),
                    max_tunings_per_shard: None,
                    eviction,
                    seeds: TableConfig::default(),
                };
                let runtime = CompilationRuntime::new(bench_options(), options);
                for batch in [&expensive, &churn, &expensive] {
                    for report in runtime.compile_batch(batch) {
                        black_box(report.unwrap());
                    }
                }
            })
        });
    }
    group.finish();
}

/// The service front-end under concurrent prioritized clients: each request of the
/// QAOA workload is submitted as its own prioritized submission (two clients,
/// interactive above background) and the handles are awaited together. Compared
/// against the synchronous wrapper compiling the same jobs as one batch — on a
/// single-CPU host both measure the same GRAPE work, so the gap is the service's
/// scheduling overhead.
fn bench_service_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_submission");
    group.sample_size(3);
    let jobs = workload();

    group.bench_function("wrapped_batch", |b| {
        b.iter(|| {
            let runtime = CompilationRuntime::new(bench_options(), RuntimeOptions::with_workers(4));
            for report in runtime.compile_batch(&jobs) {
                black_box(report.unwrap());
            }
        })
    });
    group.bench_function("prioritized_submissions", |b| {
        b.iter(|| {
            let runtime = CompilationRuntime::new(bench_options(), RuntimeOptions::with_workers(4));
            let handles: Vec<_> = jobs
                .iter()
                .enumerate()
                .map(|(index, job)| {
                    let (client, priority) = if index % 2 == 0 {
                        (1, Priority::HIGH)
                    } else {
                        (2, Priority::LOW)
                    };
                    runtime
                        .submit(
                            Submission::single(job.circuit.clone(), &job.params[..], job.strategy)
                                .with_priority(priority)
                                .with_client(client),
                        )
                        .expect("queue depth exceeds the workload")
                })
                .collect();
            for handle in handles {
                for report in handle.wait().expect("not shed") {
                    black_box(report.unwrap());
                }
            }
        })
    });
    group.finish();
}

/// Wire overhead of the TCP transport: submit→report latency of a warm-cache
/// job through a loopback `vqc_transport::Server` against the same submission
/// in-process. Both paths plan the circuit and wait for the (cached) block
/// lookup on the worker pool; the wire path adds two frame serializations, the
/// TCP round trips, and the server/client thread handoffs. The acceptance
/// target is wire ≤ 2x in-process on warm jobs.
fn bench_transport_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_roundtrip");
    group.sample_size(10);
    let runtime = std::sync::Arc::new(CompilationRuntime::new(
        bench_options(),
        RuntimeOptions::with_workers(2),
    ));
    // A representative request: the QAOA workload circuit (tens of blocks, a
    // real transpile pass per plan), strict-partial at a fixed binding.
    let graph = Graph::three_regular(6, 20).expect("3-regular graph on 6 nodes");
    let circuit = qaoa_circuit(&graph, 1);
    let params: Vec<f64> = reference_parameters(2);
    // Warm the cache so both paths measure submission overhead, not GRAPE.
    runtime
        .compile(&circuit, &params, Strategy::StrictPartial)
        .expect("the warmup compiles");

    group.bench_function("in_process_submit", |b| {
        b.iter(|| {
            let handle = runtime
                .submit(Submission::single(
                    circuit.clone(),
                    &params[..],
                    Strategy::StrictPartial,
                ))
                .expect("queue empty");
            black_box(
                handle.wait().expect("not shed")[0]
                    .as_ref()
                    .unwrap()
                    .pulse_duration_ns,
            );
        })
    });

    let server = Server::bind(
        "127.0.0.1:0",
        std::sync::Arc::clone(&runtime),
        ServerOptions::default(),
    )
    .expect("bind loopback");
    let client =
        Client::connect(server.local_addr(), ClientOptions::default()).expect("connect loopback");
    group.bench_function("wire_submit", |b| {
        b.iter(|| {
            let job = client
                .submit(SubmitPayload::Batch(vec![WireJob {
                    circuit: circuit.clone(),
                    params: params.clone(),
                    strategy: Strategy::StrictPartial,
                }]))
                .expect("connected");
            black_box(
                job.wait().expect("accepted")[0]
                    .as_ref()
                    .unwrap()
                    .pulse_duration_ns,
            );
        })
    });
    group.finish();
}

/// Instrumentation cost on the hot path: the same warm-cache submit→report
/// loop with telemetry recording enabled (the default) and disabled. Each
/// lifecycle stage costs a handful of relaxed atomic increments plus one
/// ring-buffer write; the acceptance budget is <5% on warm submissions, and
/// `emit_summary` enforces it on the noise-robust per-iteration minima.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(30);
    let graph = Graph::three_regular(6, 20).expect("3-regular graph on 6 nodes");
    let circuit = qaoa_circuit(&graph, 1);
    let params: Vec<f64> = reference_parameters(2);
    for (name, enabled) in [("telemetry_enabled", true), ("telemetry_disabled", false)] {
        let runtime = CompilationRuntime::new(
            bench_options(),
            RuntimeOptions::with_workers(2)
                .with_telemetry(TelemetryOptions::default().with_enabled(enabled)),
        );
        // Warm the cache so the loop measures submission overhead, not GRAPE.
        runtime
            .compile(&circuit, &params, Strategy::StrictPartial)
            .expect("the warmup compiles");
        group.bench_function(name, |b| {
            b.iter(|| {
                let handle = runtime
                    .submit(Submission::single(
                        circuit.clone(),
                        &params[..],
                        Strategy::StrictPartial,
                    ))
                    .expect("queue empty");
                black_box(
                    handle.wait().expect("not shed")[0]
                        .as_ref()
                        .unwrap()
                        .pulse_duration_ns,
                );
            })
        });
    }
    group.finish();
}

/// Cost of the lock-order checker on the same warm-cache submit→report loop.
/// Disabled (the default), each lock site adds two relaxed atomic loads;
/// enabled, every acquisition updates the held stack and order graph. Only the
/// disabled case is production, so the <5% budget in `emit_summary` binds the
/// checked run loosely — it exists to catch the checker becoming pathological,
/// not to make it free.
fn bench_lock_check_overhead(c: &mut Criterion) {
    use parking_lot::lock_check;
    let mut group = c.benchmark_group("lock_check_overhead");
    group.sample_size(30);
    let graph = Graph::three_regular(6, 20).expect("3-regular graph on 6 nodes");
    let circuit = qaoa_circuit(&graph, 1);
    let params: Vec<f64> = reference_parameters(2);
    for (name, enabled) in [("check_enabled", true), ("check_disabled", false)] {
        lock_check::force(enabled);
        let runtime = CompilationRuntime::new(bench_options(), RuntimeOptions::with_workers(2));
        runtime
            .compile(&circuit, &params, Strategy::StrictPartial)
            .expect("the warmup compiles");
        group.bench_function(name, |b| {
            b.iter(|| {
                let handle = runtime
                    .submit(Submission::single(
                        circuit.clone(),
                        &params[..],
                        Strategy::StrictPartial,
                    ))
                    .expect("queue empty");
                black_box(
                    handle.wait().expect("not shed")[0]
                        .as_ref()
                        .unwrap()
                        .pulse_duration_ns,
                );
            })
        });
        // Drain the runtime before flipping the global switch: a guard taken
        // with tracking must release with tracking.
        drop(runtime);
    }
    lock_check::force(false);
    lock_check::set_long_hold_reporter(None);
    group.finish();
}

fn bench_cache_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_contention");
    group.sample_size(10);

    // A realistic key population: block keys of small bound circuits.
    let keys: Vec<BlockKey> = (0..256)
        .map(|i| {
            let mut circuit = Circuit::new(2);
            circuit.rz(0, i as f64 * 0.01);
            circuit.cx(0, 1);
            BlockKey::from_bound_circuit(&circuit)
        })
        .collect();
    let entry = CachedBlock {
        duration_ns: 3.0,
        converged: true,
        grape_iterations: 50,
    };

    fn hammer(
        cache: &(impl PulseCache + ?Sized),
        keys: &[BlockKey],
        entry: &CachedBlock,
        threads: usize,
    ) {
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for (i, key) in keys.iter().enumerate() {
                        if (i + t) % 8 == 0 {
                            cache.insert_block(key.clone(), entry.clone());
                        } else {
                            black_box(cache.block(key));
                        }
                    }
                });
            }
        });
    }

    group.bench_function("pulse_library_8_threads", |b| {
        let cache = PulseLibrary::new();
        b.iter(|| hammer(&cache, &keys, &entry, 8))
    });
    group.bench_function("sharded_cache_8_threads", |b| {
        let cache = ShardedPulseCache::new(CacheConfig::default());
        b.iter(|| hammer(&cache, &keys, &entry, 8))
    });
    group.finish();
}

/// Compiles the QAOA workload once on a fresh runtime, comparing every GRAPE
/// block's a-priori cost estimate (taken before any compilation) against the
/// wall time the block was then observed to cost. Returns `(blocks,
/// model_to_host_scale, mean_abs_rel_error, fitted_scale_in_cache)`: the
/// least-squares factor aligning the model's paper-scale unit to this host, the
/// mean relative error of the scaled estimates — the gap the observed-cost
/// feedback closes for recurring blocks — and the scale the runtime's own
/// `CostCalibration` fitted online from the same run (what unseen blocks are
/// costed with).
fn cost_feedback_error() -> Option<(usize, f64, f64, Option<f64>)> {
    let runtime = CompilationRuntime::new(bench_options(), RuntimeOptions::with_workers(2));
    let jobs = workload();
    let compiler = runtime.compiler();
    let mut seen = std::collections::HashSet::new();
    let mut keyed: Vec<(BlockKey, f64)> = Vec::new();
    for job in &jobs {
        let plan = compiler
            .plan(&job.circuit, &job.params, job.strategy)
            .ok()?;
        for block in &plan.blocks {
            if let Some(key) = plan.dedup_key(block, &job.params) {
                if seen.insert(key.clone()) {
                    let estimate = compiler.estimate_block_cost_seconds(&plan, block, &job.params);
                    keyed.push((key, estimate));
                }
            }
        }
    }
    for report in runtime.compile_batch(&jobs) {
        report.ok()?;
    }
    let pairs: Vec<(f64, f64)> = keyed
        .iter()
        .filter_map(|(key, estimate)| {
            compiler
                .library()
                .observed_cost(key)
                .map(|observed| (*estimate, observed))
        })
        .collect();
    if pairs.is_empty() {
        return None;
    }
    let scale = pairs.iter().map(|(e, o)| e * o).sum::<f64>()
        / pairs.iter().map(|(e, _)| e * e).sum::<f64>();
    let mean_abs_rel_error = pairs
        .iter()
        .map(|(e, o)| (scale * e - o).abs() / o.max(1e-12))
        .sum::<f64>()
        / pairs.len() as f64;
    Some((
        pairs.len(),
        scale,
        mean_abs_rel_error,
        compiler.library().cost_model_scale(),
    ))
}

/// Writes the recorded measurements as `BENCH_runtime.json` in the workspace root
/// (or the current directory when the manifest-relative path is unavailable).
/// Skipped under `--test` smoke runs.
fn emit_summary(c: &mut Criterion) {
    if c.test_mode() {
        return;
    }
    // Worker-count scaling is bounded by the host: on a single-CPU machine all
    // configurations legitimately measure equal, and the comparison shows the
    // runtime's scheduling overhead instead of its speedup.
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let timestamp_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = format!(
        "{{\n  \"benchmark\": \"runtime\",\n  \"workload\": \"qaoa_3regular_n6_p1_full_grape_batch_of_4_graphs\",\n  \"host_parallelism\": {host_parallelism},\n  \"timestamp_unix_s\": {timestamp_unix_s},\n  \"results\": [\n",
    );
    let results = c.results();
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{}\n",
            result.group,
            result.name,
            result.mean_ns,
            result.min_ns,
            result.samples,
            if index + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    // The telemetry budget: instrumentation must cost <5% on warm submissions.
    // The comparison uses per-iteration minima (robust against scheduler
    // noise), with a 10µs absolute floor so a sub-noise difference on a fast
    // host cannot fail the ratio check.
    let bench = |group: &str, name: &str| {
        results
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(|r| (r.mean_ns, r.min_ns))
    };
    if let (Some((enabled_mean, enabled_min)), Some((disabled_mean, disabled_min))) = (
        bench("telemetry_overhead", "telemetry_enabled"),
        bench("telemetry_overhead", "telemetry_disabled"),
    ) {
        let ratio = enabled_min / disabled_min;
        json.push_str(&format!(
            "  \"telemetry_overhead\": {{\"enabled_mean_ns\": {enabled_mean:.1}, \"disabled_mean_ns\": {disabled_mean:.1}, \"enabled_min_ns\": {enabled_min:.1}, \"disabled_min_ns\": {disabled_min:.1}, \"overhead_ratio\": {ratio:.4}, \"budget_ratio\": 1.05}},\n"
        ));
        assert!(
            ratio < 1.05 || enabled_min - disabled_min < 10_000.0,
            "telemetry instrumentation costs {:.1}% on warm submissions, over the 5% budget",
            (ratio - 1.0) * 100.0
        );
    }
    // The lock-checker budget: the disabled (production) configuration must
    // not regress, so the enabled/disabled ratio is held to the same loose
    // <5%-or-10µs bound as telemetry — a tripwire for the checker's graph
    // update becoming pathological, not a claim that checking is free.
    if let (Some((enabled_mean, enabled_min)), Some((disabled_mean, disabled_min))) = (
        bench("lock_check_overhead", "check_enabled"),
        bench("lock_check_overhead", "check_disabled"),
    ) {
        let ratio = enabled_min / disabled_min;
        json.push_str(&format!(
            "  \"lock_check_overhead\": {{\"enabled_mean_ns\": {enabled_mean:.1}, \"disabled_mean_ns\": {disabled_mean:.1}, \"enabled_min_ns\": {enabled_min:.1}, \"disabled_min_ns\": {disabled_min:.1}, \"overhead_ratio\": {ratio:.4}, \"budget_ratio\": 1.05}},\n"
        ));
        assert!(
            ratio < 1.05 || enabled_min - disabled_min < 10_000.0,
            "the lock-order checker costs {:.1}% on warm submissions, over the 5% budget",
            (ratio - 1.0) * 100.0
        );
    }
    match cost_feedback_error() {
        Some((blocks, scale, error, fitted)) => {
            let fitted = fitted
                .map(|f| format!("{f:.3e}"))
                .unwrap_or_else(|| "null".to_string());
            json.push_str(&format!(
                "  \"cost_model_feedback\": {{\"grape_blocks\": {blocks}, \"model_to_host_scale\": {scale:.3e}, \"mean_abs_rel_error_of_scaled_estimates\": {error:.3}, \"fitted_scale_in_cache\": {fitted}}}\n",
            ))
        }
        None => json.push_str("  \"cost_model_feedback\": null\n"),
    }
    json.push('}');
    json.push('\n');

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_runtime.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => println!("could not write {}: {error}", path.display()),
    }
}

criterion_group!(
    benches,
    bench_compilation,
    bench_scheduling_order,
    bench_eviction_policy,
    bench_service_submission,
    bench_transport_roundtrip,
    bench_telemetry_overhead,
    bench_lock_check_overhead,
    bench_cache_contention,
    emit_summary
);
criterion_main!(benches);
