//! Benchmarks of the GRAPE engine: one exact gradient evaluation and one full
//! fixed-duration optimization on one- and two-qubit targets, plus the
//! `grape_kernel` group comparing the seed's allocate-per-call gradient path
//! against the reused [`GrapeWorkspace`] kernel and the `grape_smallmat` group
//! comparing the dynamic workspace kernel against the const-generic
//! `SmallMatrix` fast path, and the `profile_overhead` group gating the armed
//! compile-phase profiler to under five percent of the warm gradient path. The
//! measurements (and the speedups they imply) are written to `BENCH_grape.json`
//! in the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use vqc_pulse::grape::{fidelity_gradient, optimize_pulse, GrapeOptions};
use vqc_pulse::minimum_time::{minimum_pulse_time_seeded, MinimumTimeOptions, MinimumTimeResult};
use vqc_pulse::{
    profile, DeviceModel, EigenMemo, GrapeWorkspace, KernelPolicy, PulseSequence, SeedEntry,
    TableConfig, TranspositionTable,
};
use vqc_sim::gates;

/// Total GRAPE iterations of the last cold / table-seeded `grape_seeding` pass,
/// handed from the benchmark bodies to [`emit_summary`] (which asserts the
/// seeding speedup before writing `BENCH_grape.json`).
static SEEDING_COLD_ITERS: AtomicU64 = AtomicU64::new(0);
static SEEDING_SEEDED_ITERS: AtomicU64 = AtomicU64::new(0);

fn bench_grape(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape");
    group.sample_size(10);

    for qubits in [1usize, 2] {
        let device = DeviceModel::qubits_line(qubits);
        let target = if qubits == 1 { gates::h() } else { gates::cx() };
        let pulse = PulseSequence::seeded_guess(&device, 10, 0.5, 1);
        group.bench_function(format!("gradient_{qubits}q_10slices"), |b| {
            b.iter(|| fidelity_gradient(black_box(&target), black_box(&device), black_box(&pulse)))
        });
    }

    let device = DeviceModel::qubits_line(1);
    let mut options = GrapeOptions::fast();
    options.max_iterations = 50;
    options.target_infidelity = 1e-3;
    group.bench_function("optimize_rz_1q_50iters", |b| {
        b.iter(|| {
            optimize_pulse(
                black_box(&gates::rz(1.0)),
                black_box(&device),
                1.0,
                black_box(&options),
            )
        })
    });

    group.finish();
}

/// Before/after comparison of one gradient iteration: the seed path rebuilt and
/// heap-allocated every slice eigensystem, propagator, and partial product per call
/// (reproduced faithfully by constructing a fresh workspace each iteration, which
/// is exactly what the allocating `fidelity_gradient` wrapper does); the kernel
/// path reuses one [`GrapeWorkspace`] across iterations, the way
/// `try_optimize_pulse` now runs.
fn bench_grape_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape_kernel");
    group.sample_size(30);

    for (qubits, slices) in [(1usize, 24usize), (2, 24)] {
        let device = DeviceModel::qubits_line(qubits);
        let target = if qubits == 1 { gates::h() } else { gates::cx() };
        let pulse = PulseSequence::seeded_guess(&device, slices, 0.5, 1);

        // The seed path: a fresh dynamic workspace per call. Pinned to
        // ForceDynamic so the static fast path cannot leak into the baseline
        // and silently inflate (or deflate) the historical speedup series.
        group.bench_function(format!("seed_alloc_{qubits}q_{slices}slices"), |b| {
            b.iter(|| {
                let mut workspace = GrapeWorkspace::with_kernel(
                    black_box(&device),
                    slices,
                    KernelPolicy::ForceDynamic,
                );
                workspace.set_target(&device, &target);
                workspace.fidelity_gradient(black_box(&pulse))
            })
        });

        let mut workspace =
            GrapeWorkspace::with_kernel(&device, slices, KernelPolicy::ForceDynamic);
        workspace.set_target(&device, &target);
        group.bench_function(format!("workspace_{qubits}q_{slices}slices"), |b| {
            b.iter(|| workspace.fidelity_gradient(black_box(&pulse)))
        });
    }

    group.finish();
}

/// The const-generic fast path against the dynamic workspace kernel, on the same
/// reused-workspace footing: `smallmat_*` runs the `SmallMatrix` engine that
/// `GrapeWorkspace::new` binds for 2/4/16-dimensional devices, against the
/// `workspace_*` dynamic numbers from [`bench_grape_kernel`].
fn bench_grape_smallmat(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape_smallmat");
    group.sample_size(30);

    for (qubits, slices) in [(1usize, 24usize), (2, 24)] {
        let device = DeviceModel::qubits_line(qubits);
        let target = if qubits == 1 { gates::h() } else { gates::cx() };
        let pulse = PulseSequence::seeded_guess(&device, slices, 0.5, 1);

        let mut workspace = GrapeWorkspace::new(&device, slices);
        assert!(
            workspace.uses_static_kernel(),
            "{qubits}q device must bind the SmallMatrix engine"
        );
        workspace.set_target(&device, &target);
        group.bench_function(format!("smallmat_{qubits}q_{slices}slices"), |b| {
            b.iter(|| workspace.fidelity_gradient(black_box(&pulse)))
        });
    }

    group.finish();
}

/// Folds one finished duration search into the transposition-table entry for
/// its structure, the way `PartialCompiler::record_search_feedback` does: the
/// failed lower bound is the deepest non-converging probe, every probe lands in
/// the iteration history, and the converged pulse rides along as the warm
/// start for the next binding.
fn record_search(table: &TranspositionTable<u64>, key: u64, result: &MinimumTimeResult) {
    let mut entry = SeedEntry {
        learning_rate: 0.0,
        decay_rate: 0.0,
        tuned: false,
        converged_duration_ns: result.converged.then_some(result.duration_ns),
        failed_below_ns: result
            .probes
            .iter()
            .filter(|p| !p.converged)
            .map(|p| p.duration_ns)
            .fold(0.0, f64::max),
        probe_iterations: Vec::new(),
        pulse: result.best.as_ref().map(|b| b.pulse.clone()),
    };
    for probe in &result.probes {
        entry.record_probe(probe.duration_ns, probe.iterations);
    }
    table.record(&key, entry);
}

/// The repeat-structure workload of the warm-start index: the same Rz
/// subcircuit recompiled with a fresh θ per variational pass. The cold pass
/// binary-searches every binding from the full gate-based window; the seeded
/// pass probes a transposition table warmed by one earlier binding of the same
/// structure (the largest angle, so the converged window transfers to every
/// smaller rotation) and opens each search at the neighbor's window with the
/// neighbor's converged amplitudes. Both passes must converge to target
/// fidelity at a duration no worse than the gate-based upper bound; the seeded
/// pass must spend ≥1.5x fewer total GRAPE iterations ([`emit_summary`]
/// enforces this before writing the summary).
fn bench_grape_seeding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape_seeding");
    group.sample_size(10);

    let device = DeviceModel::qubits_line(1);
    let grape = GrapeOptions::fast();
    // The gate-based upper bound for a 1q Rz slice; fresh θs for the measured
    // pass, all at or below the priming angle (minimum pulse duration grows
    // with |θ|, so a structural neighbor's window only transfers downward).
    let upper_bound_ns = 4.0;
    let search = MinimumTimeOptions::new(0.0, upper_bound_ns).with_precision(0.5);
    let fresh_thetas = [2.2, 1.7, 1.3, 0.9];
    const STRUCTURE_KEY: u64 = 0;

    group.bench_function("cold_pass_rz_4thetas", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &theta in &fresh_thetas {
                let mut memo = EigenMemo::new();
                let result = minimum_pulse_time_seeded(
                    black_box(&gates::rz(theta)),
                    &device,
                    &search,
                    &grape,
                    &mut memo,
                    None,
                )
                .expect("cold search");
                assert!(
                    result.converged,
                    "cold Rz({theta}) must reach target fidelity"
                );
                assert!(result.duration_ns <= upper_bound_ns + 1e-9);
                total += result.total_iterations() as u64;
            }
            SEEDING_COLD_ITERS.store(total, Ordering::Relaxed);
            black_box(total)
        })
    });

    // Prime the table once with the largest-angle binding, exactly as the
    // compiler's first encounter with the structure would.
    let table = TranspositionTable::new(TableConfig::default());
    let mut memo = EigenMemo::new();
    let primed =
        minimum_pulse_time_seeded(&gates::rz(2.4), &device, &search, &grape, &mut memo, None)
            .expect("priming search");
    assert!(primed.converged, "the priming binding must converge");
    record_search(&table, STRUCTURE_KEY, &primed);

    group.bench_function("seeded_pass_rz_4thetas", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &theta in &fresh_thetas {
                let seed = table.probe(&STRUCTURE_KEY).expect("primed entry");
                let search_seed = seed.search_seed();
                let mut memo = EigenMemo::new();
                let result = minimum_pulse_time_seeded(
                    black_box(&gates::rz(theta)),
                    &device,
                    &search,
                    &grape,
                    &mut memo,
                    Some(&search_seed),
                )
                .expect("seeded search");
                assert!(
                    result.converged,
                    "seeded Rz({theta}) must reach target fidelity"
                );
                assert!(result.duration_ns <= upper_bound_ns + 1e-9);
                total += result.total_iterations() as u64;
                record_search(&table, STRUCTURE_KEY, &result);
            }
            SEEDING_SEEDED_ITERS.store(total, Ordering::Relaxed);
            black_box(total)
        })
    });

    group.finish();
}

/// The compile-phase profiler's cost on the warm GRAPE gradient path: the same
/// reused `SmallMatrix` workspace measured disarmed (the production default,
/// where every instrumentation point is one relaxed atomic load) and armed
/// (`VQC_PROFILE=1`, where the Lap marks read the monotonic clock and bump
/// thread-local accumulators). [`emit_summary`] asserts the armed/disarmed
/// `min_ns` ratio stays under 1.05 before writing the summary — the profiler's
/// observability budget is five percent of the hot loop, enforced here.
fn bench_profile_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_overhead");
    group.sample_size(30);

    let device = DeviceModel::qubits_line(2);
    let target = gates::cx();
    let pulse = PulseSequence::seeded_guess(&device, 24, 0.5, 1);
    let mut workspace = GrapeWorkspace::new(&device, 24);
    assert!(
        workspace.uses_static_kernel(),
        "the overhead gate must measure the production 2q fast path"
    );
    workspace.set_target(&device, &target);

    profile::set_armed(false);
    group.bench_function("disarmed_2q_24slices", |b| {
        b.iter(|| workspace.fidelity_gradient(black_box(&pulse)))
    });

    profile::set_armed(true);
    profile::begin_block();
    group.bench_function("armed_2q_24slices", |b| {
        b.iter(|| workspace.fidelity_gradient(black_box(&pulse)))
    });
    let block = profile::take_block();
    profile::set_armed(false);
    assert!(
        block.is_some_and(|block| !block.is_empty()),
        "the armed pass must have attributed phase time"
    );

    group.finish();
}

/// Writes the `grape_kernel`/`grape_smallmat` measurements, the per-size
/// kernel-over-seed speedups, and the static-over-dynamic speedups as
/// `BENCH_grape.json` in the workspace root, alongside `host_parallelism` and a
/// unix timestamp (so the single-CPU caveat on these numbers is
/// machine-checkable, as in `BENCH_runtime.json`). Skipped under `--test` smoke
/// runs.
fn emit_summary(c: &mut Criterion) {
    if c.test_mode() {
        return;
    }
    let results = c.results();
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let timestamp_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = format!(
        "{{\n  \"benchmark\": \"grape\",\n  \"workload\": \"fidelity_gradient_iteration_seed_alloc_vs_reused_workspace_vs_smallmat\",\n  \"host_parallelism\": {host_parallelism},\n  \"timestamp_unix_s\": {timestamp_unix_s},\n  \"results\": [\n",
    );
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{}\n",
            result.group,
            result.name,
            result.mean_ns,
            result.min_ns,
            result.samples,
            if index + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"kernel_speedup_over_seed\": {\n");
    let mean_of = |group: &str, name: String| {
        results
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(|r| r.mean_ns)
    };
    let mut speedups = Vec::new();
    for (qubits, slices) in [(1usize, 24usize), (2, 24)] {
        if let (Some(seed), Some(kernel)) = (
            mean_of(
                "grape_kernel",
                format!("seed_alloc_{qubits}q_{slices}slices"),
            ),
            mean_of(
                "grape_kernel",
                format!("workspace_{qubits}q_{slices}slices"),
            ),
        ) {
            speedups.push(format!(
                "    \"{qubits}q_{slices}slices\": {:.3}",
                seed / kernel
            ));
        }
    }
    json.push_str(&speedups.join(",\n"));
    json.push_str("\n  },\n  \"smallmat_speedup_over_workspace\": {\n");
    let mut static_speedups = Vec::new();
    for (qubits, slices) in [(1usize, 24usize), (2, 24)] {
        if let (Some(dynamic), Some(fast)) = (
            mean_of(
                "grape_kernel",
                format!("workspace_{qubits}q_{slices}slices"),
            ),
            mean_of(
                "grape_smallmat",
                format!("smallmat_{qubits}q_{slices}slices"),
            ),
        ) {
            let speedup = dynamic / fast;
            assert!(
                speedup >= 2.0,
                "SmallMatrix fast path is only {speedup:.2}x over the dynamic kernel \
                 for {qubits}q_{slices}slices (target: >=2x)"
            );
            static_speedups.push(format!("    \"{qubits}q_{slices}slices\": {speedup:.3}"));
        }
    }
    json.push_str(&static_speedups.join(",\n"));
    json.push_str("\n  },\n");

    // The profiler's observability budget: arming `VQC_PROFILE` may not slow
    // the warm gradient path by more than five percent. Compared on `min_ns`
    // because the best observed iteration is the least noisy estimator on a
    // single-CPU host, where scheduling jitter inflates the means.
    let min_of = |group: &str, name: &str| {
        results
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(|r| r.min_ns)
    };
    let disarmed_ns = min_of("profile_overhead", "disarmed_2q_24slices")
        .expect("the profile_overhead disarmed pass must have run");
    let armed_ns = min_of("profile_overhead", "armed_2q_24slices")
        .expect("the profile_overhead armed pass must have run");
    let overhead_ratio = armed_ns / disarmed_ns;
    assert!(
        overhead_ratio < 1.05,
        "the armed profiler costs {overhead_ratio:.3}x of the disarmed gradient \
         path ({armed_ns:.1}ns vs {disarmed_ns:.1}ns; budget: <1.05x)"
    );
    json.push_str(&format!(
        "  \"profile_overhead\": {{\n    \"disarmed_min_ns\": {disarmed_ns:.1},\n    \"armed_min_ns\": {armed_ns:.1},\n    \"armed_over_disarmed\": {overhead_ratio:.3}\n  }},\n"
    ));

    // The warm-start index's headline number: total GRAPE iterations across a
    // repeat-structure pass, cold vs table-seeded. Asserted before the file is
    // written so a regression can never publish a green-looking summary.
    let cold_iters = SEEDING_COLD_ITERS.load(Ordering::Relaxed);
    let seeded_iters = SEEDING_SEEDED_ITERS.load(Ordering::Relaxed);
    assert!(
        cold_iters > 0 && seeded_iters > 0,
        "the grape_seeding passes must have run before the summary is emitted"
    );
    let reduction = cold_iters as f64 / seeded_iters as f64;
    assert!(
        reduction >= 1.5,
        "table seeding only cut total GRAPE iterations by {reduction:.2}x \
         ({cold_iters} cold vs {seeded_iters} seeded; target: >=1.5x)"
    );
    json.push_str(&format!(
        "  \"seeding_iteration_reduction\": {{\n    \"cold_iterations\": {cold_iters},\n    \"seeded_iterations\": {seeded_iters},\n    \"reduction\": {reduction:.3}\n  }}\n}}\n"
    ));

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_grape.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => println!("could not write {}: {error}", path.display()),
    }
}

criterion_group!(
    benches,
    bench_grape,
    bench_grape_kernel,
    bench_grape_smallmat,
    bench_grape_seeding,
    bench_profile_overhead,
    emit_summary
);
criterion_main!(benches);
