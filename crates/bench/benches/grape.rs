//! Benchmarks of the GRAPE engine: one exact gradient evaluation and one full
//! fixed-duration optimization on one- and two-qubit targets, plus the
//! `grape_kernel` group comparing the seed's allocate-per-call gradient path
//! against the reused [`GrapeWorkspace`] kernel and the `grape_smallmat` group
//! comparing the dynamic workspace kernel against the const-generic
//! `SmallMatrix` fast path. The measurements (and the speedups they imply) are
//! written to `BENCH_grape.json` in the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::Write;
use vqc_pulse::grape::{fidelity_gradient, optimize_pulse, GrapeOptions};
use vqc_pulse::{DeviceModel, GrapeWorkspace, KernelPolicy, PulseSequence};
use vqc_sim::gates;

fn bench_grape(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape");
    group.sample_size(10);

    for qubits in [1usize, 2] {
        let device = DeviceModel::qubits_line(qubits);
        let target = if qubits == 1 { gates::h() } else { gates::cx() };
        let pulse = PulseSequence::seeded_guess(&device, 10, 0.5, 1);
        group.bench_function(format!("gradient_{qubits}q_10slices"), |b| {
            b.iter(|| fidelity_gradient(black_box(&target), black_box(&device), black_box(&pulse)))
        });
    }

    let device = DeviceModel::qubits_line(1);
    let mut options = GrapeOptions::fast();
    options.max_iterations = 50;
    options.target_infidelity = 1e-3;
    group.bench_function("optimize_rz_1q_50iters", |b| {
        b.iter(|| {
            optimize_pulse(
                black_box(&gates::rz(1.0)),
                black_box(&device),
                1.0,
                black_box(&options),
            )
        })
    });

    group.finish();
}

/// Before/after comparison of one gradient iteration: the seed path rebuilt and
/// heap-allocated every slice eigensystem, propagator, and partial product per call
/// (reproduced faithfully by constructing a fresh workspace each iteration, which
/// is exactly what the allocating `fidelity_gradient` wrapper does); the kernel
/// path reuses one [`GrapeWorkspace`] across iterations, the way
/// `try_optimize_pulse` now runs.
fn bench_grape_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape_kernel");
    group.sample_size(30);

    for (qubits, slices) in [(1usize, 24usize), (2, 24)] {
        let device = DeviceModel::qubits_line(qubits);
        let target = if qubits == 1 { gates::h() } else { gates::cx() };
        let pulse = PulseSequence::seeded_guess(&device, slices, 0.5, 1);

        // The seed path: a fresh dynamic workspace per call. Pinned to
        // ForceDynamic so the static fast path cannot leak into the baseline
        // and silently inflate (or deflate) the historical speedup series.
        group.bench_function(format!("seed_alloc_{qubits}q_{slices}slices"), |b| {
            b.iter(|| {
                let mut workspace = GrapeWorkspace::with_kernel(
                    black_box(&device),
                    slices,
                    KernelPolicy::ForceDynamic,
                );
                workspace.set_target(&device, &target);
                workspace.fidelity_gradient(black_box(&pulse))
            })
        });

        let mut workspace =
            GrapeWorkspace::with_kernel(&device, slices, KernelPolicy::ForceDynamic);
        workspace.set_target(&device, &target);
        group.bench_function(format!("workspace_{qubits}q_{slices}slices"), |b| {
            b.iter(|| workspace.fidelity_gradient(black_box(&pulse)))
        });
    }

    group.finish();
}

/// The const-generic fast path against the dynamic workspace kernel, on the same
/// reused-workspace footing: `smallmat_*` runs the `SmallMatrix` engine that
/// `GrapeWorkspace::new` binds for 2/4/16-dimensional devices, against the
/// `workspace_*` dynamic numbers from [`bench_grape_kernel`].
fn bench_grape_smallmat(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape_smallmat");
    group.sample_size(30);

    for (qubits, slices) in [(1usize, 24usize), (2, 24)] {
        let device = DeviceModel::qubits_line(qubits);
        let target = if qubits == 1 { gates::h() } else { gates::cx() };
        let pulse = PulseSequence::seeded_guess(&device, slices, 0.5, 1);

        let mut workspace = GrapeWorkspace::new(&device, slices);
        assert!(
            workspace.uses_static_kernel(),
            "{qubits}q device must bind the SmallMatrix engine"
        );
        workspace.set_target(&device, &target);
        group.bench_function(format!("smallmat_{qubits}q_{slices}slices"), |b| {
            b.iter(|| workspace.fidelity_gradient(black_box(&pulse)))
        });
    }

    group.finish();
}

/// Writes the `grape_kernel`/`grape_smallmat` measurements, the per-size
/// kernel-over-seed speedups, and the static-over-dynamic speedups as
/// `BENCH_grape.json` in the workspace root, alongside `host_parallelism` and a
/// unix timestamp (so the single-CPU caveat on these numbers is
/// machine-checkable, as in `BENCH_runtime.json`). Skipped under `--test` smoke
/// runs.
fn emit_summary(c: &mut Criterion) {
    if c.test_mode() {
        return;
    }
    let results = c.results();
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let timestamp_unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = format!(
        "{{\n  \"benchmark\": \"grape\",\n  \"workload\": \"fidelity_gradient_iteration_seed_alloc_vs_reused_workspace_vs_smallmat\",\n  \"host_parallelism\": {host_parallelism},\n  \"timestamp_unix_s\": {timestamp_unix_s},\n  \"results\": [\n",
    );
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{}\n",
            result.group,
            result.name,
            result.mean_ns,
            result.min_ns,
            result.samples,
            if index + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"kernel_speedup_over_seed\": {\n");
    let mean_of = |group: &str, name: String| {
        results
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(|r| r.mean_ns)
    };
    let mut speedups = Vec::new();
    for (qubits, slices) in [(1usize, 24usize), (2, 24)] {
        if let (Some(seed), Some(kernel)) = (
            mean_of(
                "grape_kernel",
                format!("seed_alloc_{qubits}q_{slices}slices"),
            ),
            mean_of(
                "grape_kernel",
                format!("workspace_{qubits}q_{slices}slices"),
            ),
        ) {
            speedups.push(format!(
                "    \"{qubits}q_{slices}slices\": {:.3}",
                seed / kernel
            ));
        }
    }
    json.push_str(&speedups.join(",\n"));
    json.push_str("\n  },\n  \"smallmat_speedup_over_workspace\": {\n");
    let mut static_speedups = Vec::new();
    for (qubits, slices) in [(1usize, 24usize), (2, 24)] {
        if let (Some(dynamic), Some(fast)) = (
            mean_of(
                "grape_kernel",
                format!("workspace_{qubits}q_{slices}slices"),
            ),
            mean_of(
                "grape_smallmat",
                format!("smallmat_{qubits}q_{slices}slices"),
            ),
        ) {
            let speedup = dynamic / fast;
            assert!(
                speedup >= 2.0,
                "SmallMatrix fast path is only {speedup:.2}x over the dynamic kernel \
                 for {qubits}q_{slices}slices (target: >=2x)"
            );
            static_speedups.push(format!("    \"{qubits}q_{slices}slices\": {speedup:.3}"));
        }
    }
    json.push_str(&static_speedups.join(",\n"));
    json.push_str("\n  }\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_grape.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => println!("could not write {}: {error}", path.display()),
    }
}

criterion_group!(
    benches,
    bench_grape,
    bench_grape_kernel,
    bench_grape_smallmat,
    emit_summary
);
criterion_main!(benches);
