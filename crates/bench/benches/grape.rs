//! Benchmarks of the GRAPE engine: one exact gradient evaluation and one full
//! fixed-duration optimization on one- and two-qubit targets.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vqc_pulse::grape::{fidelity_gradient, optimize_pulse, GrapeOptions};
use vqc_pulse::{DeviceModel, PulseSequence};
use vqc_sim::gates;

fn bench_grape(c: &mut Criterion) {
    let mut group = c.benchmark_group("grape");
    group.sample_size(10);

    for qubits in [1usize, 2] {
        let device = DeviceModel::qubits_line(qubits);
        let target = if qubits == 1 { gates::h() } else { gates::cx() };
        let pulse = PulseSequence::seeded_guess(&device, 10, 0.5, 1);
        group.bench_function(format!("gradient_{qubits}q_10slices"), |b| {
            b.iter(|| fidelity_gradient(black_box(&target), black_box(&device), black_box(&pulse)))
        });
    }

    let device = DeviceModel::qubits_line(1);
    let mut options = GrapeOptions::fast();
    options.max_iterations = 50;
    options.target_infidelity = 1e-3;
    group.bench_function("optimize_rz_1q_50iters", |b| {
        b.iter(|| {
            optimize_pulse(
                black_box(&gates::rz(1.0)),
                black_box(&device),
                1.0,
                black_box(&options),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_grape);
criterion_main!(benches);
