//! Micro-benchmarks of the numerical substrate: matrix exponentials, Hermitian
//! eigendecomposition, state-vector simulation, and circuit-unitary construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vqc_apps::graphs::Graph;
use vqc_apps::qaoa::qaoa_circuit;
use vqc_bench::reference_parameters;
use vqc_linalg::expm::expm;
use vqc_linalg::{c64, eigh, Matrix, C64};
use vqc_sim::{circuit_unitary, StateVector};

fn random_hermitian(n: usize) -> Matrix {
    let raw = Matrix::from_fn(n, n, |r, c| {
        c64(
            ((r * 7 + c * 13) as f64 * 0.37).sin(),
            ((r * 3 + c * 11) as f64 * 0.53).cos(),
        )
    });
    (&raw + &raw.dagger()).scale_real(0.5)
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    for &n in &[4usize, 16] {
        let h = random_hermitian(n);
        group.bench_function(format!("expm_{n}x{n}"), |b| {
            b.iter(|| expm(black_box(&h.scale(C64::new(0.0, -0.5)))))
        });
        group.bench_function(format!("eigh_{n}x{n}"), |b| b.iter(|| eigh(black_box(&h))));
    }

    let graph = Graph::three_regular(8, 3).unwrap();
    let circuit = qaoa_circuit(&graph, 2).bind(&reference_parameters(4));
    group.bench_function("statevector_qaoa_n8_p2", |b| {
        b.iter(|| StateVector::from_circuit(black_box(&circuit)))
    });

    let small_graph = Graph::clique(4);
    let small = qaoa_circuit(&small_graph, 1).bind(&reference_parameters(2));
    group.bench_function("circuit_unitary_4q", |b| {
        b.iter(|| circuit_unitary(black_box(&small)))
    });

    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
