//! Benchmarks of the circuit-level transpiler: optimization passes, routing, and ASAP
//! scheduling on the paper's benchmark circuits.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vqc_apps::molecules::Molecule;
use vqc_apps::qaoa::table3_benchmarks;
use vqc_apps::uccsd::uccsd_circuit;
use vqc_circuit::mapping::map_to_topology;
use vqc_circuit::timing::{critical_path_ns, GateTimes};
use vqc_circuit::{passes, Topology};

fn bench_transpiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpiler");
    group.sample_size(10);

    let lih = uccsd_circuit(Molecule::LiH);
    group.bench_function("optimize_uccsd_lih", |b| {
        b.iter(|| passes::optimize(black_box(&lih)))
    });

    let qaoa = table3_benchmarks()[7].circuit(); // 3-Regular N=6 p=8
    group.bench_function("optimize_qaoa_n6_p8", |b| {
        b.iter(|| passes::optimize(black_box(&qaoa)))
    });

    let optimized = passes::optimize(&qaoa);
    let topology = Topology::grid(2, 3);
    group.bench_function("route_qaoa_n6_p8_to_grid", |b| {
        b.iter(|| map_to_topology(black_box(&optimized), black_box(&topology)).unwrap())
    });

    let times = GateTimes::default();
    group.bench_function("critical_path_qaoa_n6_p8", |b| {
        b.iter(|| critical_path_ns(black_box(&optimized), black_box(&times)))
    });

    group.finish();
}

criterion_group!(benches, bench_transpiler);
criterion_main!(benches);
