//! Benchmarks of the compilation strategies themselves: the per-iteration cost of
//! gate-based and (cache-warm) strict partial compilation, which is the latency a
//! variational algorithm actually pays at runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vqc_apps::graphs::Graph;
use vqc_apps::qaoa::qaoa_circuit;
use vqc_bench::reference_parameters;
use vqc_core::{CompilerOptions, PartialCompiler, Strategy};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategies");
    group.sample_size(10);

    let graph = Graph::cycle(4);
    let circuit = qaoa_circuit(&graph, 1);
    let params = reference_parameters(2);

    let compiler = PartialCompiler::new(CompilerOptions::fast());
    group.bench_function("gate_based_qaoa_c4_p1", |b| {
        b.iter(|| {
            compiler
                .compile(black_box(&circuit), black_box(&params), Strategy::GateBased)
                .unwrap()
        })
    });

    // Warm the pulse library once, then measure the lookup-dominated recompile cost —
    // the paper's "essentially instant" runtime path for strict partial compilation.
    compiler
        .compile(&circuit, &params, Strategy::StrictPartial)
        .unwrap();
    group.bench_function("strict_partial_qaoa_c4_p1_cached", |b| {
        b.iter(|| {
            compiler
                .compile(
                    black_box(&circuit),
                    black_box(&params),
                    Strategy::StrictPartial,
                )
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
