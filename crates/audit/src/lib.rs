//! Repo-specific static analysis for the vqc workspace.
//!
//! A deliberately lightweight, hand-rolled Rust source scanner (the build
//! container has no registry access, so no `syn`) enforcing five lints the
//! concurrent runtime depends on:
//!
//! 1. **`unwrap`** — no `.unwrap()` / `.expect(` in non-test library code under
//!    `crates/*/src`. Panics in the service stack take a worker, a connection
//!    handler, or the whole process down with them; recoverable paths must
//!    return typed errors. Genuine invariants are suppressed per-site with
//!    `// audit:allow(unwrap): <reason>` — the reason is mandatory.
//! 2. **`env_drift`** — every `VQC_*` environment variable read anywhere in
//!    `crates/*/src` or `shims/*/src` must appear in `README.md`, and every
//!    `VQC_*` token in the README must correspond to a variable the code
//!    actually reads. Knob documentation cannot silently rot in either
//!    direction.
//! 3. **`wire`** — every `Request` variant of the wire protocol is handled in
//!    the server dispatch (`server.rs` mentions `Request::Variant`) and every
//!    `Response` variant in the client demux (`client.rs` mentions
//!    `Response::Variant`). Adding a wire message without teaching both ends
//!    fails the audit, not a code review.
//! 4. **`trace_stage`** — every `TraceStage` lifecycle variant is handled as
//!    `TraceStage::Variant` both in the telemetry layer (the Chrome-trace
//!    exporter's naming path) and in the `vqc-top` event tail's glyph match.
//!    Adding a lifecycle stage that renders blank in the dashboard or the
//!    trace export fails the audit.
//! 5. **`guard_blocking`** — heuristic: a lock guard bound by `let g = x.lock()`
//!    (or `.read()` / `.write()`) must not be live across a blocking call
//!    (`write_frame(`, a bare `send(`, `.join(`) in the same block. Sites where
//!    holding the lock across the call is the point (the transport's writer
//!    lock serializes frames) carry `// audit:allow(guard_blocking): <reason>`.
//!
//! Doc comments, ordinary comments, and `#[cfg(test)] mod` bodies are ignored.
//! The scanner is lexical: it tracks string literals and comment state well
//! enough for this codebase's idiom, not for arbitrary Rust.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired (`unwrap`, `env_drift`, `wire`, `trace_stage`,
    /// `guard_blocking`, `pragma`).
    pub lint: &'static str,
    /// File the finding is in, relative to the workspace root when possible.
    pub file: String,
    /// 1-based line number (0 when the finding is file-level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A source line split into its code and comment portions, with context flags.
struct Line {
    /// The original line text.
    raw: String,
    /// Code with string-literal contents blanked and comments removed.
    code: String,
    /// The `//` comment text of the line, if any.
    comment: Option<String>,
    /// Inside a `#[cfg(test)] mod` body (or a `tests/` file).
    in_test: bool,
    /// Brace depth at the *start* of the line.
    depth_before: i32,
}

impl Line {
    /// The original text with any trailing `//` comment removed (string
    /// contents intact, unlike `code`).
    fn raw_code(&self) -> &str {
        match &self.comment {
            Some(comment) => &self.raw[..self.raw.len() - comment.len() - 2],
            None => &self.raw,
        }
    }
}

/// Lexes a file into per-line code/comment portions, blanking string contents
/// and tracking `#[cfg(test)] mod` regions by brace depth.
fn lex(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut depth: i32 = 0;
    let mut in_block_comment = false;
    // (depth at which the test mod was opened) while inside one.
    let mut test_region: Option<i32> = None;
    let mut pending_cfg_test = false;

    for raw in source.lines() {
        let depth_before = depth;
        let mut code = String::with_capacity(raw.len());
        let mut comment = None;
        let mut chars = raw.char_indices().peekable();
        let mut in_string = false;
        let mut in_char = false;
        let mut raw_hashes: Option<usize> = None;
        while let Some((i, c)) = chars.next() {
            if in_block_comment {
                if c == '*' && matches!(chars.peek(), Some((_, '/'))) {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            if in_string {
                if let Some(hashes) = raw_hashes {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    if c == '"' {
                        let mut seen = 0;
                        while seen < hashes {
                            match chars.peek() {
                                Some((_, '#')) => {
                                    chars.next();
                                    seen += 1;
                                }
                                _ => break,
                            }
                        }
                        if seen == hashes {
                            in_string = false;
                            raw_hashes = None;
                            code.push('"');
                        }
                    }
                } else if c == '\\' {
                    chars.next();
                } else if c == '"' {
                    in_string = false;
                    code.push('"');
                }
                continue;
            }
            if in_char {
                if c == '\\' {
                    chars.next();
                } else if c == '\'' {
                    in_char = false;
                }
                continue;
            }
            match c {
                '/' if matches!(chars.peek(), Some((_, '/'))) => {
                    comment = Some(raw[i + 2..].to_string());
                    break;
                }
                '/' if matches!(chars.peek(), Some((_, '*'))) => {
                    chars.next();
                    in_block_comment = true;
                }
                '"' => {
                    // Check for raw string prefix r / r#...
                    let mut hashes = 0;
                    let bytes = code.as_bytes();
                    let mut j = bytes.len();
                    while j > 0 && bytes[j - 1] == b'#' {
                        hashes += 1;
                        j -= 1;
                    }
                    if j > 0 && bytes[j - 1] == b'r' && hashes > 0 {
                        raw_hashes = Some(hashes);
                    } else if hashes == 0 && j > 0 && bytes[j - 1] == b'r' {
                        raw_hashes = Some(0);
                    }
                    in_string = true;
                    code.push('"');
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal: a char literal closes
                    // with another quote within a few chars; lifetimes are
                    // followed by an identifier and no closing quote. Peek:
                    // treat as char literal if a `'` appears within 3 chars.
                    let rest = &raw[i + 1..];
                    let is_char = rest
                        .char_indices()
                        .take(4)
                        .any(|(j, rc)| rc == '\'' && (j > 0 || rest.starts_with("\\'")));
                    if is_char {
                        in_char = true;
                    }
                    code.push('\'');
                }
                _ => code.push(c),
            }
        }

        let trimmed = code.trim();
        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test
            && !trimmed.is_empty()
            && test_region.is_none()
            && trimmed.starts_with("mod ")
        {
            test_region = Some(depth_before);
            pending_cfg_test = false;
        } else if pending_cfg_test && !trimmed.is_empty() && !trimmed.starts_with("#[") {
            // #[cfg(test)] guarding something other than a mod (a fn, an
            // import): only that item is test-only. Treating just this line as
            // test code is enough for this codebase's idiom.
            pending_cfg_test = false;
        }

        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }

        let in_test = test_region.is_some();
        if let Some(open_depth) = test_region {
            if depth <= open_depth {
                test_region = None;
            }
        }

        lines.push(Line {
            raw: raw.to_string(),
            code,
            comment,
            in_test,
            depth_before,
        });
    }
    lines
}

/// A parsed `audit:allow(<lint>): <reason>` pragma.
struct Pragma {
    lint: String,
    has_reason: bool,
}

fn parse_pragma(comment: &str) -> Option<Pragma> {
    let start = comment.find("audit:allow(")?;
    let rest = &comment[start + "audit:allow(".len()..];
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let has_reason = after
        .strip_prefix(':')
        .is_some_and(|reason| !reason.trim().is_empty());
    Some(Pragma { lint, has_reason })
}

/// Scans one library source file for the `unwrap` and `guard_blocking` lints.
/// `label` is the path used in findings.
pub fn scan_source(label: &str, source: &str, findings: &mut Vec<Finding>) {
    let lines = lex(source);
    // Pragma carried forward across comment-only lines until it lands on code.
    let mut active: Option<Pragma> = None;
    // Live lock guards: (variable name, depth the binding lives at).
    let mut guards: Vec<(String, i32)> = Vec::new();

    for (index, line) in lines.iter().enumerate() {
        let number = index + 1;
        if let Some(comment) = &line.comment {
            if let Some(pragma) = parse_pragma(comment) {
                if !pragma.has_reason {
                    findings.push(Finding {
                        lint: "pragma",
                        file: label.to_string(),
                        line: number,
                        message: format!(
                            "audit:allow({}) without a reason — write \
                             `// audit:allow({}): <why this is safe>`",
                            pragma.lint, pragma.lint
                        ),
                    });
                } else {
                    active = Some(pragma);
                }
            }
        }
        let code = line.code.trim();
        if code.is_empty() {
            continue; // Comment-only or blank: pragma stays active.
        }
        let suppress =
            |lint: &str, active: &Option<Pragma>| active.as_ref().is_some_and(|p| p.lint == lint);

        if !line.in_test {
            // Lint 1: unwrap/expect in library code.
            let has_unwrap = code.contains(".unwrap()") || code.contains(".expect(");
            if has_unwrap && !suppress("unwrap", &active) {
                findings.push(Finding {
                    lint: "unwrap",
                    file: label.to_string(),
                    line: number,
                    message: "`.unwrap()`/`.expect(` in non-test code — return a typed \
                              error, or justify with `// audit:allow(unwrap): <reason>`"
                        .to_string(),
                });
            }

            // Lint 4: guard held across a blocking call.
            guards.retain(|(name, depth)| {
                line.depth_before >= *depth && !code.contains(&format!("drop({name})"))
            });
            if has_blocking_call(code) && !guards.is_empty() && !suppress("guard_blocking", &active)
            {
                let held: Vec<&str> = guards.iter().map(|(name, _)| name.as_str()).collect();
                findings.push(Finding {
                    lint: "guard_blocking",
                    file: label.to_string(),
                    line: number,
                    message: format!(
                        "blocking call while lock guard{} `{}` {} live — drop the guard \
                         first, or justify with `// audit:allow(guard_blocking): <reason>`",
                        if held.len() > 1 { "s" } else { "" },
                        held.join("`, `"),
                        if held.len() > 1 { "are" } else { "is" },
                    ),
                });
            }
            if let Some(name) = guard_binding(code) {
                if suppress("guard_blocking", &active) {
                    // A pragma on the binding waives the whole guard scope.
                } else {
                    guards.push((name, line.depth_before));
                }
            }
        }
        active = None; // Pragmas apply to exactly one code line.
    }
}

/// Recognizes `let [mut] name = <expr>.lock();` (also `.read()` / `.write()`)
/// and returns the bound name. Chained expressions (`x.lock().get(..)`) do not
/// bind a guard and are ignored.
fn guard_binding(code: &str) -> Option<String> {
    let rest = code.trim().strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let (name, rest) = rest.split_once('=')?;
    let name = name.trim().trim_end_matches(':').trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    let expr = rest.trim().trim_end_matches(';').trim_end();
    for method in [".lock()", ".read()", ".write()"] {
        if expr.ends_with(method) {
            return Some(name.to_string());
        }
    }
    None
}

/// Blocking markers: frame writes, bare `send(` (channel `.send(` is
/// non-blocking for the unbounded mpsc used here), and thread joins.
fn has_blocking_call(code: &str) -> bool {
    if code.contains("write_frame(") || code.contains(".join(") {
        return true;
    }
    // Bare `send(` not preceded by `.` or an identifier character.
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("send(") {
        let at = from + pos;
        let before = at.checked_sub(1).map(|i| bytes[i] as char);
        let standalone = !matches!(
            before,
            Some(c) if c == '.' || c.is_alphanumeric() || c == '_'
        );
        if standalone {
            return true;
        }
        from = at + "send(".len();
    }
    false
}

/// Extracts `VQC_*` tokens from a line (used for both env reads and README
/// mentions).
fn vqc_tokens(text: &str, into: &mut BTreeSet<String>) {
    let mut from = 0;
    while let Some(pos) = text[from..].find("VQC_") {
        let at = from + pos;
        let tail = &text[at..];
        let end = tail
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_uppercase() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(tail.len());
        let token = tail[..end].trim_end_matches('_');
        if token.len() > "VQC_".len() {
            into.insert(token.to_string());
        }
        from = at + end.max(1);
    }
}

/// Collects env-var reads (`env::var("VQC_*")`) from one source file. Comments
/// and `#[cfg(test)] mod` bodies (e.g. fixture strings in tests) are ignored.
pub fn scan_env_reads(source: &str, into: &mut BTreeSet<String>) {
    for line in lex(source) {
        // Only count actual reads, not strings or docs that mention a knob.
        if !line.in_test && line.code.contains("env::var") {
            vqc_tokens(line.raw_code(), into);
        }
    }
}

/// Lint 2: bidirectional drift between env reads in code and the README.
pub fn check_env_drift(reads: &BTreeSet<String>, readme: &str, findings: &mut Vec<Finding>) {
    let mut documented = BTreeSet::new();
    vqc_tokens(readme, &mut documented);
    for var in reads.difference(&documented) {
        findings.push(Finding {
            lint: "env_drift",
            file: "README.md".to_string(),
            line: 0,
            message: format!("`{var}` is read in code but not documented in README.md"),
        });
    }
    for var in documented.difference(reads) {
        findings.push(Finding {
            lint: "env_drift",
            file: "README.md".to_string(),
            line: 0,
            message: format!("`{var}` appears in README.md but nothing reads it"),
        });
    }
}

/// Extracts the variant names of `pub enum <name>` from wire-protocol source.
pub fn enum_variants(source: &str, name: &str) -> Vec<String> {
    let lines = lex(source);
    let needle = format!("pub enum {name}");
    let mut variants = Vec::new();
    let mut inside = false;
    let mut open_depth = 0;
    for line in &lines {
        let code = line.code.trim();
        if !inside {
            if code.starts_with(&needle) {
                inside = true;
                open_depth = line.depth_before;
            }
            continue;
        }
        // The enum body sits at open_depth + 1; its closing `}` line starts at
        // that depth and drops back to open_depth.
        if line.depth_before == open_depth + 1 && code.starts_with('}') {
            break;
        }
        // A variant line starts with a capitalized identifier at depth+1,
        // followed by `{`, `(`, `,` or end-of-line.
        if line.depth_before == open_depth + 1 {
            let ident: String = code
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                let after = &code[ident.len()..];
                if after.is_empty()
                    || after.starts_with(' ')
                    || after.starts_with('{')
                    || after.starts_with('(')
                    || after.starts_with(',')
                {
                    variants.push(ident);
                }
            }
        }
    }
    variants
}

/// Lint 3: wire-protocol exhaustiveness — each enum variant must be mentioned
/// as `<enum>::<variant>` in the handler source.
pub fn check_wire_exhaustive(
    enum_name: &str,
    variants: &[String],
    handler_label: &str,
    handler_source: &str,
    findings: &mut Vec<Finding>,
) {
    for variant in variants {
        let pattern = format!("{enum_name}::{variant}");
        if !handler_source.contains(&pattern) {
            findings.push(Finding {
                lint: "wire",
                file: handler_label.to_string(),
                line: 0,
                message: format!("wire variant `{pattern}` is never handled in {handler_label}"),
            });
        }
    }
}

/// Lint 4: lifecycle-stage exhaustiveness — each [`TraceStage`] variant must be
/// mentioned as `TraceStage::<variant>` in every observability surface that
/// renders stages (the telemetry exporter, the `vqc-top` event tail). Same
/// mechanism as the wire lint, different enum and handler set.
pub fn check_trace_stage_exhaustive(
    variants: &[String],
    handler_label: &str,
    handler_source: &str,
    findings: &mut Vec<Finding>,
) {
    for variant in variants {
        let pattern = format!("TraceStage::{variant}");
        if !handler_source.contains(&pattern) {
            findings.push(Finding {
                lint: "trace_stage",
                file: handler_label.to_string(),
                line: 0,
                message: format!(
                    "lifecycle variant `{pattern}` is never handled in {handler_label}"
                ),
            });
        }
    }
}

/// Collects `.rs` files under `dir`, recursively, sorted for determinism.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&current) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Runs every lint over the workspace rooted at `root`. Returns all findings;
/// an empty vector is a clean audit.
pub fn scan_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut env_reads = BTreeSet::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                crate_dirs.push(entry.path());
            }
        }
    }
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        for path in rust_files(&src) {
            let Ok(source) = std::fs::read_to_string(&path) else {
                continue;
            };
            let label = rel_label(root, &path);
            // Binaries (`src/bin`, `main.rs`) may panic at top level — CLI
            // ergonomics; the unwrap/guard lints cover library code.
            let is_bin = path.components().any(|c| c.as_os_str() == "bin")
                || path.file_name().is_some_and(|f| f == "main.rs");
            if !is_bin {
                scan_source(&label, &source, &mut findings);
            }
            scan_env_reads(&source, &mut env_reads);
        }
    }

    // Shims read the lock-checker knobs; include them in env accounting (their
    // library code is third-party-shaped and exempt from the unwrap lint).
    let shims_dir = root.join("shims");
    if let Ok(entries) = std::fs::read_dir(&shims_dir) {
        let mut shim_dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        shim_dirs.sort();
        for shim_dir in shim_dirs {
            for path in rust_files(&shim_dir.join("src")) {
                if let Ok(source) = std::fs::read_to_string(&path) {
                    scan_env_reads(&source, &mut env_reads);
                }
            }
        }
    }

    if let Ok(readme) = std::fs::read_to_string(root.join("README.md")) {
        check_env_drift(&env_reads, &readme, &mut findings);
    } else {
        findings.push(Finding {
            lint: "env_drift",
            file: "README.md".to_string(),
            line: 0,
            message: "README.md is missing — cannot check knob documentation".to_string(),
        });
    }

    let wire_path = root.join("crates/transport/src/wire.rs");
    let server_path = root.join("crates/transport/src/server.rs");
    let client_path = root.join("crates/transport/src/client.rs");
    if let (Ok(wire), Ok(server), Ok(client)) = (
        std::fs::read_to_string(&wire_path),
        std::fs::read_to_string(&server_path),
        std::fs::read_to_string(&client_path),
    ) {
        let requests = enum_variants(&wire, "Request");
        let responses = enum_variants(&wire, "Response");
        if requests.is_empty() || responses.is_empty() {
            findings.push(Finding {
                lint: "wire",
                file: rel_label(root, &wire_path),
                line: 0,
                message: "could not parse Request/Response enums from wire.rs".to_string(),
            });
        }
        check_wire_exhaustive(
            "Request",
            &requests,
            &rel_label(root, &server_path),
            &server,
            &mut findings,
        );
        check_wire_exhaustive(
            "Response",
            &responses,
            &rel_label(root, &client_path),
            &client,
            &mut findings,
        );
    }

    let telemetry_path = root.join("crates/runtime/src/telemetry.rs");
    let top_path = root.join("crates/apps/src/bin/top.rs");
    if let (Ok(telemetry), Ok(top)) = (
        std::fs::read_to_string(&telemetry_path),
        std::fs::read_to_string(&top_path),
    ) {
        let stages = enum_variants(&telemetry, "TraceStage");
        if stages.is_empty() {
            findings.push(Finding {
                lint: "trace_stage",
                file: rel_label(root, &telemetry_path),
                line: 0,
                message: "could not parse the TraceStage enum from telemetry.rs".to_string(),
            });
        }
        // The Chrome exporter names events through `TraceStage::name()`'s
        // exhaustive match in the same file; the dashboard's event tail has
        // its own per-variant glyph match.
        check_trace_stage_exhaustive(
            &stages,
            &rel_label(root, &telemetry_path),
            &telemetry,
            &mut findings,
        );
        check_trace_stage_exhaustive(&stages, &rel_label(root, &top_path), &top, &mut findings);
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(source: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        scan_source("fixture.rs", source, &mut findings);
        findings
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let findings = scan_str("fn f() {\n    let x = maybe().unwrap();\n}\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "unwrap");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn expect_in_library_code_is_flagged() {
        let findings = scan_str("fn f() {\n    maybe().expect(\"why\");\n}\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "unwrap");
    }

    #[test]
    fn unwrap_in_cfg_test_mod_is_ignored() {
        let source = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        maybe().unwrap();\n    }\n}\n";
        assert!(scan_str(source).is_empty());
    }

    #[test]
    fn unwrap_in_comment_or_string_is_ignored() {
        let source = "fn f() {\n    // calls .unwrap() somewhere\n    let s = \".unwrap()\";\n    let _ = s;\n}\n";
        assert!(scan_str(source).is_empty());
    }

    #[test]
    fn pragma_with_reason_suppresses_same_line_and_next_line() {
        let inline = "fn f() {\n    maybe().unwrap(); // audit:allow(unwrap): invariant held\n}\n";
        assert!(scan_str(inline).is_empty());
        let above =
            "fn f() {\n    // audit:allow(unwrap): invariant held\n    maybe().unwrap();\n}\n";
        assert!(scan_str(above).is_empty());
    }

    #[test]
    fn pragma_carries_over_comment_continuation_lines() {
        let source = "fn f() {\n    // audit:allow(unwrap): a very long reason\n    // that wraps to a second comment line\n    maybe().unwrap();\n}\n";
        assert!(scan_str(source).is_empty());
    }

    #[test]
    fn pragma_suppresses_exactly_one_code_line() {
        let source = "fn f() {\n    // audit:allow(unwrap): first only\n    maybe().unwrap();\n    maybe().unwrap();\n}\n";
        let findings = scan_str(source);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn pragma_without_reason_is_itself_a_finding() {
        let source = "fn f() {\n    // audit:allow(unwrap)\n    maybe().unwrap();\n}\n";
        let findings = scan_str(source);
        assert!(findings.iter().any(|f| f.lint == "pragma"));
        assert!(findings.iter().any(|f| f.lint == "unwrap"));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let source =
            "fn f() {\n    maybe().unwrap_or(0);\n    maybe().unwrap_or_else(|| 1);\n    maybe().unwrap_or_default();\n    res().expect_err(\"no\");\n}\n";
        let findings: Vec<_> = scan_str(source)
            .into_iter()
            .filter(|f| f.lint == "unwrap")
            .collect();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn guard_across_write_frame_is_flagged() {
        let source = "fn f() {\n    let mut stream = writer.lock();\n    write_frame(&mut *stream, r, max)?;\n}\n";
        let findings = scan_str(source);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "guard_blocking");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn guard_dropped_before_blocking_call_is_clean() {
        let source = "fn f() {\n    let live = jobs.lock();\n    drop(live);\n    send(&writer, &r, max);\n}\n";
        assert!(scan_str(source).is_empty());
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let source = "fn f() {\n    {\n        let g = m.lock();\n        use_it(&g);\n    }\n    send(&writer, &r, max);\n}\n";
        assert!(scan_str(source).is_empty());
    }

    #[test]
    fn channel_send_is_not_a_blocking_marker() {
        let source = "fn f() {\n    let subs = m.lock();\n    tx.send(snapshot);\n}\n";
        assert!(scan_str(source).is_empty());
    }

    #[test]
    fn guard_blocking_pragma_on_binding_waives_scope() {
        let source = "fn f() {\n    // audit:allow(guard_blocking): writer lock serializes frames\n    let mut stream = writer.lock();\n    write_frame(&mut *stream, r, max)?;\n}\n";
        assert!(scan_str(source).is_empty());
    }

    #[test]
    fn chained_lock_expression_binds_no_guard() {
        let source = "fn f() {\n    let st = jobs.lock().get(&id).cloned();\n    send(&writer, &st, max);\n}\n";
        assert!(scan_str(source).is_empty());
    }

    #[test]
    fn env_drift_is_bidirectional() {
        let mut reads = BTreeSet::new();
        reads.insert("VQC_ONLY_IN_CODE".to_string());
        reads.insert("VQC_BOTH".to_string());
        let readme = "Knobs: `VQC_BOTH`, `VQC_ONLY_IN_README`.";
        let mut findings = Vec::new();
        check_env_drift(&reads, readme, &mut findings);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(
            |f| f.message.contains("VQC_ONLY_IN_CODE") && f.message.contains("not documented")
        ));
        assert!(findings.iter().any(
            |f| f.message.contains("VQC_ONLY_IN_README") && f.message.contains("nothing reads")
        ));
    }

    #[test]
    fn env_reads_require_an_env_var_call() {
        let mut reads = BTreeSet::new();
        scan_env_reads(
            "let a = std::env::var(\"VQC_REAL\");\nlet b = \"VQC_JUST_A_STRING\";\n",
            &mut reads,
        );
        assert!(reads.contains("VQC_REAL"));
        assert!(!reads.contains("VQC_JUST_A_STRING"));
    }

    #[test]
    fn wire_exhaustiveness_detects_missing_variant() {
        let wire =
            "pub enum Request {\n    Hello { a: u32 },\n    Submit(u64),\n    Shutdown,\n}\n";
        let variants = enum_variants(wire, "Request");
        assert_eq!(variants, ["Hello", "Submit", "Shutdown"]);
        let handler =
            "match r {\n    Request::Hello { .. } => {}\n    Request::Submit(_) => {}\n}\n";
        let mut findings = Vec::new();
        check_wire_exhaustive("Request", &variants, "server.rs", handler, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("Request::Shutdown"));
    }

    #[test]
    fn trace_stage_exhaustiveness_detects_missing_variant() {
        let telemetry = "pub enum TraceStage {\n    Submitted,\n    Phase,\n}\n";
        let variants = enum_variants(telemetry, "TraceStage");
        assert_eq!(variants, ["Submitted", "Phase"]);
        let handler = "match stage {\n    TraceStage::Submitted => '+',\n}\n";
        let mut findings = Vec::new();
        check_trace_stage_exhaustive(&variants, "top.rs", handler, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "trace_stage");
        assert!(findings[0].message.contains("TraceStage::Phase"));
    }

    #[test]
    fn seeded_violation_fixture_fails_and_repo_idiom_passes() {
        // The exact shape shipped in the transport crate must stay clean...
        let clean = "fn send(w: &Arc<Mutex<TcpStream>>) {\n    // audit:allow(guard_blocking): the writer lock IS the frame serializer\n    let mut stream = w.lock();\n    write_frame(&mut *stream, r, max)\n}\n";
        assert!(scan_str(clean).is_empty());
        // ...and the same shape without the pragma must fail.
        let seeded = "fn send(w: &Arc<Mutex<TcpStream>>) {\n    let mut stream = w.lock();\n    write_frame(&mut *stream, r, max)\n}\n";
        assert_eq!(scan_str(seeded).len(), 1);
    }

    #[test]
    fn workspace_is_audit_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let findings = scan_workspace(root);
        assert!(
            findings.is_empty(),
            "audit findings:\n{}",
            findings
                .iter()
                .map(|f| format!("  {f}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
