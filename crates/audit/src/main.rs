//! `vqc-audit` — run the workspace lints and exit non-zero on any finding.
//!
//! Usage: `cargo run -p vqc-audit [--root <workspace-root>]`. With no `--root`,
//! the workspace root is discovered by walking up from the current directory to
//! the first `Cargo.toml` containing a `[workspace]` section.

use std::path::PathBuf;
use std::process::ExitCode;

fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: vqc-audit [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("vqc-audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(discover_root) else {
        eprintln!("vqc-audit: could not locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };

    let findings = vqc_audit::scan_workspace(&root);
    if findings.is_empty() {
        println!("vqc-audit: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        println!("vqc-audit: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
