//! Integration tests tying the pulse layer back to the circuit layer: GRAPE pulses for
//! compiled blocks really implement the block unitaries they claim to.

use vqc::circuit::timing::{critical_path_ns, GateTimes};
use vqc::circuit::{passes, Circuit};
use vqc::core::blocking::{aggregate_blocks, ParameterPolicy};
use vqc::pulse::grape::{evaluate_pulse, optimize_pulse, GrapeOptions};
use vqc::pulse::minimum_time::{minimum_pulse_time, MinimumTimeOptions};
use vqc::pulse::DeviceModel;
use vqc::sim::{circuit_unitary, gates};

#[test]
fn grape_pulse_for_a_fixed_block_reaches_target_fidelity() {
    // A Fixed entangling block (H ⊗ H followed by CX), as strict partial compilation
    // would pre-compile it.
    let mut block = Circuit::new(2);
    block.h(0);
    block.h(1);
    block.cx(0, 1);
    let prepared = passes::optimize(&block);
    let target = circuit_unitary(&prepared);

    let device = DeviceModel::qubits_line(2);
    let mut options = GrapeOptions::fast();
    options.target_infidelity = 2e-2;
    options.max_iterations = 250;
    let upper = critical_path_ns(&prepared, &GateTimes::default());
    let result = optimize_pulse(&target, &device, upper, &options);
    assert!(result.infidelity < 0.05, "infidelity {}", result.infidelity);
    // Re-evaluating the stored pulse reproduces the reported infidelity.
    let check = evaluate_pulse(&target, &device, &result.pulse);
    assert!((check - result.infidelity).abs() < 1e-6);
}

#[test]
fn minimum_time_search_beats_gate_based_for_a_multi_gate_block() {
    // Three serial single-qubit gates: the gate-based time is their sum, while GRAPE
    // fuses them into one shorter pulse (the "maximal circuit optimization" speedup
    // source of Section 5.1).
    let mut block = Circuit::new(1);
    block.h(0);
    block.rz(0, 1.2);
    block.h(0);
    let prepared = passes::optimize(&block);
    let gate_ns = critical_path_ns(&prepared, &GateTimes::default());
    let target = circuit_unitary(&prepared);
    let device = DeviceModel::qubits_line(1);
    let mut grape = GrapeOptions::fast();
    grape.target_infidelity = 2e-2;
    let search = MinimumTimeOptions::new(0.0, gate_ns).with_precision(0.5);
    let result = minimum_pulse_time(&target, &device, &search, &grape).unwrap();
    assert!(result.converged);
    assert!(
        result.duration_ns < gate_ns,
        "GRAPE {} ns should beat gate-based {} ns",
        result.duration_ns,
        gate_ns
    );
}

#[test]
fn blocking_then_unitary_reconstruction_preserves_semantics() {
    // Splitting a circuit into blocks and multiplying the block unitaries back together
    // (in schedule order on disjoint registers) must reproduce the circuit unitary.
    let mut c = Circuit::new(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, 0.7);
    c.cx(0, 1);
    c.rx(0, 0.4);
    let prepared = passes::optimize(&c);
    let blocks = aggregate_blocks(&prepared, 2, ParameterPolicy::Unlimited);
    // All ops land in one 2-qubit block here, so its unitary equals the circuit's.
    assert_eq!(blocks.len(), 1);
    let block_unitary = circuit_unitary(&blocks[0].to_circuit(&prepared));
    let full_unitary = circuit_unitary(&prepared);
    assert!(block_unitary.approx_eq_up_to_phase(&full_unitary, 1e-9));
}

#[test]
fn single_qubit_gate_pulses_match_table1_scale() {
    // The device model reproduces the Table-1 time scale: an X gate needs ~2.5 ns and
    // cannot be done in 1 ns.
    let device = DeviceModel::qubits_line(1);
    let mut grape = GrapeOptions::fast();
    grape.target_infidelity = 1e-2;
    let fast_enough = optimize_pulse(&gates::x(), &device, 3.0, &grape);
    assert!(fast_enough.converged);
    let too_fast = optimize_pulse(&gates::x(), &device, 1.0, &grape);
    assert!(!too_fast.converged);
}
