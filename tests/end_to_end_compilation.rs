//! Cross-crate integration tests: benchmark circuits flow through the full compilation
//! pipeline and the strategy orderings the paper reports hold.

use vqc::apps::graphs::Graph;
use vqc::apps::molecules::Molecule;
use vqc::apps::qaoa::qaoa_circuit;
use vqc::apps::uccsd::uccsd_circuit;
use vqc::core::{CompilerOptions, PartialCompiler, Strategy};

fn fast_compiler() -> PartialCompiler {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 120;
    options.grape.target_infidelity = 3e-2;
    options.search_precision_ns = 1.5;
    PartialCompiler::new(options)
}

#[test]
fn qaoa_cycle_strategies_preserve_paper_ordering() {
    let graph = Graph::cycle(4);
    let circuit = qaoa_circuit(&graph, 1);
    let params = [0.5, 0.9];
    let compiler = fast_compiler();

    let gate = compiler
        .compile(&circuit, &params, Strategy::GateBased)
        .unwrap();
    let strict = compiler
        .compile(&circuit, &params, Strategy::StrictPartial)
        .unwrap();
    let flexible = compiler
        .compile(&circuit, &params, Strategy::FlexiblePartial)
        .unwrap();
    let full = compiler
        .compile(&circuit, &params, Strategy::FullGrape)
        .unwrap();

    // Pulse-duration ordering: every strategy is at least as fast as gate-based, and
    // full GRAPE is the fastest.
    for report in [&strict, &flexible, &full] {
        assert!(report.pulse_duration_ns <= gate.pulse_duration_ns + 1e-9);
    }
    assert!(full.pulse_duration_ns <= strict.pulse_duration_ns + 1e-9);
    assert!(full.pulse_duration_ns <= flexible.pulse_duration_ns + 1e-9);

    // Latency attribution: strict pays nothing at runtime, full pays everything there.
    assert_eq!(strict.runtime.grape_iterations, 0);
    assert!(strict.precompute.grape_iterations > 0);
    assert_eq!(full.precompute.grape_iterations, 0);
    assert!(full.runtime.grape_iterations > 0);
    assert!(flexible.runtime.grape_iterations < full.runtime.grape_iterations);
}

#[test]
fn h2_uccsd_compiles_under_every_strategy() {
    let circuit = uccsd_circuit(Molecule::H2);
    let params = vec![0.4; Molecule::H2.num_parameters()];
    let compiler = fast_compiler();
    let gate = compiler
        .compile(&circuit, &params, Strategy::GateBased)
        .unwrap();
    assert!(gate.pulse_duration_ns > 0.0);
    let strict = compiler
        .compile(&circuit, &params, Strategy::StrictPartial)
        .unwrap();
    assert!(strict.pulse_duration_ns <= gate.pulse_duration_ns + 1e-9);
    assert!(strict.pulse_speedup() >= 1.0 - 1e-9);
    // A second compile at new parameters reuses the whole Fixed-block library.
    let again = compiler
        .compile(&circuit, &[1.2; 3], Strategy::StrictPartial)
        .unwrap();
    assert_eq!(again.precompute.grape_iterations, 0);
}

#[test]
fn gate_based_runtime_grows_linearly_in_qaoa_rounds() {
    // The Figure 2 / Figure 6 baseline behaviour.
    let graph = Graph::three_regular(6, 5).unwrap();
    let compiler = fast_compiler();
    let mut previous = 0.0;
    let mut increments = Vec::new();
    for p in 1..=4 {
        let runtime = compiler.gate_based_runtime_ns(&qaoa_circuit(&graph, p));
        assert!(runtime > previous);
        increments.push(runtime - previous);
        previous = runtime;
    }
    // Successive increments are roughly equal (linear growth).
    let first = increments[1];
    for inc in &increments[1..] {
        assert!(
            (inc - first).abs() < 0.35 * first,
            "increments {increments:?}"
        );
    }
}

#[test]
fn compilation_reports_are_internally_consistent() {
    let graph = Graph::cycle(4);
    let circuit = qaoa_circuit(&graph, 1);
    let compiler = fast_compiler();
    let report = compiler
        .compile(&circuit, &[0.3, 0.7], Strategy::StrictPartial)
        .unwrap();
    assert_eq!(report.num_blocks, report.blocks.len());
    for block in &report.blocks {
        assert!(block.duration_ns <= block.gate_based_ns + 1e-9);
        assert!(!block.qubits.is_empty());
        assert!(block.num_ops > 0);
    }
    // The scheduled total can never exceed the sum of block durations.
    let serial: f64 = report.blocks.iter().map(|b| b.duration_ns).sum();
    assert!(report.pulse_duration_ns <= serial + 1e-9);
}
