//! Integration tests of the end-to-end variational loop on top of the simulator.

use vqc::apps::graphs::Graph;
use vqc::apps::molecules::Molecule;
use vqc::apps::optimizer::NelderMead;
use vqc::apps::qaoa::{maxcut_hamiltonian, qaoa_circuit};
use vqc::apps::uccsd::uccsd_circuit;
use vqc::apps::variational::{evaluate_energy, run_molecule_vqe, run_qaoa};
use vqc::sim::StateVector;

#[test]
fn vqe_h2_reaches_chemical_accuracy_neighbourhood() {
    let optimizer = NelderMead {
        max_evaluations: 700,
        ..NelderMead::default()
    };
    let result = run_molecule_vqe(Molecule::H2, &optimizer);
    let exact = Molecule::H2.hamiltonian().min_eigenvalue(800);
    assert!(
        result.energy >= exact - 1e-9,
        "variational energy cannot beat the true minimum"
    );
    assert!(
        result.energy - exact < 0.05,
        "VQE energy {} too far above exact {exact}",
        result.energy
    );
}

#[test]
fn qaoa_on_three_regular_graph_beats_random_cut() {
    let graph = Graph::three_regular(6, 11).unwrap();
    let optimizer = NelderMead {
        max_evaluations: 400,
        ..NelderMead::default()
    };
    let result = run_qaoa(&graph, 1, &optimizer);
    let random_expectation = graph.num_edges() as f64 / 2.0;
    assert!(result.expected_cut > random_expectation);
    assert!(result.approximation_ratio <= 1.0 + 1e-9);
    assert!(result.approximation_ratio > 0.6);
}

#[test]
fn qaoa_energy_landscape_is_consistent_with_direct_simulation() {
    let graph = Graph::cycle(4);
    let circuit = qaoa_circuit(&graph, 1);
    let hamiltonian = maxcut_hamiltonian(&graph);
    let params = [0.35, 0.8];
    let via_helper = evaluate_energy(&circuit, &hamiltonian, &params);
    let state = StateVector::from_circuit(&circuit.bind(&params));
    let direct = hamiltonian.expectation(&state);
    assert!((via_helper - direct).abs() < 1e-10);
}

#[test]
fn uccsd_ansatz_prepares_states_of_the_right_particle_structure() {
    // The Hartree-Fock reference (all parameters zero) must be the half-filled basis
    // state for every molecule width.
    for molecule in [Molecule::H2, Molecule::LiH, Molecule::BeH2] {
        let circuit = uccsd_circuit(molecule).bind(&vec![0.0; molecule.num_parameters()]);
        let state = StateVector::from_circuit(&circuit);
        let n = molecule.num_qubits();
        // Occupied orbitals 0..n/2 set -> index with the top n/2 bits set.
        let expected_index = ((1usize << (n / 2)) - 1) << (n - n / 2);
        assert!(
            state.probability(expected_index) > 0.999,
            "{molecule}: Hartree-Fock reference not prepared"
        );
    }
}
