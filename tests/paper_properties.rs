//! Integration tests for the structural properties of the benchmark suites that the
//! paper's compilation strategies rely on (Section 4, 6 and 7.1).

use vqc::apps::graphs::Graph;
use vqc::apps::molecules::Molecule;
use vqc::apps::qaoa::{qaoa_circuit, table3_benchmarks};
use vqc::apps::uccsd::uccsd_circuit;
use vqc::circuit::passes;

#[test]
fn table2_benchmark_suite_matches_the_paper() {
    let expected = [
        (Molecule::H2, 2, 3),
        (Molecule::LiH, 4, 8),
        (Molecule::BeH2, 6, 26),
        (Molecule::NaH, 8, 24),
        (Molecule::H2O, 10, 92),
    ];
    for (molecule, qubits, params) in expected {
        assert_eq!(molecule.num_qubits(), qubits);
        assert_eq!(molecule.num_parameters(), params);
    }
}

#[test]
fn all_benchmark_circuits_are_parameter_monotonic() {
    // Parameter monotonicity (Section 7.1) is what makes flexible partial compilation's
    // deep single-angle slices possible; it must survive circuit optimization.
    for molecule in [Molecule::H2, Molecule::LiH, Molecule::BeH2] {
        let circuit = passes::optimize(&uccsd_circuit(molecule));
        assert!(circuit.is_parameter_monotonic(), "{molecule}");
        assert_eq!(
            circuit.num_parameters(),
            molecule.num_parameters(),
            "{molecule}"
        );
    }
    for benchmark in table3_benchmarks().iter().filter(|b| b.p <= 3) {
        let circuit = passes::optimize(&benchmark.circuit());
        assert!(circuit.is_parameter_monotonic(), "{}", benchmark.name());
        assert_eq!(circuit.num_parameters(), 2 * benchmark.p);
    }
}

#[test]
fn uccsd_is_parameter_sparse_and_qaoa_is_parameter_dense() {
    // Section 6: Rz(θ) gates are 5-8% of UCCSD gates but 15-28% of QAOA gates, which is
    // why strict partial compilation works well for VQE and poorly for QAOA.
    let uccsd_fraction = passes::optimize(&uccsd_circuit(Molecule::BeH2)).parameterized_fraction();
    let graph = Graph::three_regular(6, 19).unwrap();
    let qaoa_fraction = passes::optimize(&qaoa_circuit(&graph, 4)).parameterized_fraction();
    assert!(uccsd_fraction < 0.15, "UCCSD fraction {uccsd_fraction}");
    assert!(qaoa_fraction > 0.15, "QAOA fraction {qaoa_fraction}");
    assert!(qaoa_fraction > 2.0 * uccsd_fraction);
}

#[test]
fn table3_covers_all_32_benchmarks_with_growing_runtimes() {
    let benchmarks = table3_benchmarks();
    assert_eq!(benchmarks.len(), 32);
    // Within a family, the gate-based runtime grows with p (Table 3's key trend).
    use vqc::circuit::timing::{critical_path_ns, GateTimes};
    let times = GateTimes::default();
    for &(n, regular) in &[(6usize, true), (8, false)] {
        let mut last = 0.0;
        for p in 1..=4 {
            let benchmark = benchmarks
                .iter()
                .find(|b| b.num_nodes == n && b.three_regular == regular && b.p == p)
                .unwrap();
            let runtime = critical_path_ns(&passes::optimize(&benchmark.circuit()), &times);
            assert!(runtime > last);
            last = runtime;
        }
    }
}

#[test]
fn three_regular_graphs_have_more_edges_than_average_erdos_renyi() {
    // N=6: 3-regular has 9 edges, Erdos-Renyi(0.5) has 7.5 in expectation — consistent
    // with 3-regular runtimes exceeding Erdos-Renyi runtimes in Table 3.
    let regular = Graph::three_regular(6, 23).unwrap();
    assert_eq!(regular.num_edges(), 9);
    let total: usize = (0..20)
        .map(|s| Graph::erdos_renyi(6, 0.5, s).num_edges())
        .sum();
    let average = total as f64 / 20.0;
    assert!(average < 9.0);
}
