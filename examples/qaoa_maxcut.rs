//! End-to-end QAOA MAXCUT on a random 3-regular graph, followed by compilation of the
//! QAOA circuit through the runtime's submission front-end: two prioritized clients
//! submit their parameter-binding batches concurrently and wait on job handles.
//!
//! Run with `cargo run --release --example qaoa_maxcut`.

use vqc::apps::graphs::Graph;
use vqc::apps::optimizer::NelderMead;
use vqc::apps::qaoa::qaoa_circuit;
use vqc::apps::variational::run_qaoa;
use vqc::core::{CompilerOptions, Strategy};
use vqc::runtime::{CompilationRuntime, Priority, RuntimeOptions, Submission};

fn main() {
    let graph = Graph::three_regular(6, 7).expect("3-regular graphs exist on 6 nodes");
    println!(
        "QAOA MAXCUT on a 3-regular graph with {} nodes and {} edges (max cut = {})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_cut()
    );

    let optimizer = NelderMead {
        max_evaluations: 500,
        ..NelderMead::default()
    };
    for p in [1usize, 2] {
        let result = run_qaoa(&graph, p, &optimizer);
        println!(
            "  p={p}: expected cut {:.2} of {}  (approximation ratio {:.2}, {} evaluations)",
            result.expected_cut, result.max_cut, result.approximation_ratio, result.evaluations
        );
    }

    // Compile the p=1 circuit at several (γ, β) bindings through the service
    // front-end: an interactive client submits its strict-partial batch at high
    // priority while a background client queues the gate-based baseline at low
    // priority. Both handles are collected afterwards — the scheduler interleaves
    // the work, reusing whatever Fixed blocks exist across all bindings.
    let circuit = qaoa_circuit(&graph, 1);
    let runtime = CompilationRuntime::new(CompilerOptions::fast(), RuntimeOptions::default());
    let bindings = vec![vec![0.4, 0.8], vec![0.9, 0.3], vec![1.3, 1.1]];
    println!(
        "\nCompiling the p=1 QAOA circuit at {} parameter bindings (two prioritized clients):",
        bindings.len()
    );
    let submissions = [
        (Strategy::StrictPartial, Priority::HIGH),
        (Strategy::GateBased, Priority::LOW),
    ]
    .map(|(strategy, priority)| {
        let handle = runtime
            .submit(
                Submission::iterations(circuit.clone(), bindings.clone(), strategy)
                    .with_priority(priority)
                    .with_client(priority.0 as u64),
            )
            .expect("the admission queue is empty");
        (strategy, handle)
    });
    for (strategy, handle) in submissions {
        let reports = handle.wait().expect("not shed");
        let report = reports[0].as_ref().expect("QAOA circuit compiles");
        println!(
            "  {:<18} {:>8.1} ns  ({:.2}x speedup)",
            strategy.name(),
            report.pulse_duration_ns,
            report.pulse_speedup()
        );
    }
    let metrics = runtime.metrics();
    println!(
        "\nRuntime metrics: {} submissions, {} cache hits, {} misses, {} unique block compilations.",
        metrics.submissions, metrics.cache.hits, metrics.cache.misses, metrics.unique_compilations
    );
}
