//! The latency / pulse-duration trade-off over several variational iterations: full
//! GRAPE recompiles every block at every iteration, while partial compilation reuses
//! its pre-computed work. The iterations are submitted to the concurrent runtime as
//! one batch per strategy, so the cross-iteration reuse is handled by the shared
//! sharded cache rather than by loop order.
//!
//! Run with `cargo run --release --example partial_vs_full`.

use vqc::circuit::{Circuit, ParamExpr};
use vqc::core::{CompilerOptions, Strategy};
use vqc::runtime::{CompilationRuntime, RuntimeOptions};

fn variational_circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0);
    c.h(1);
    c.cx(0, 1);
    c.rz_expr(1, ParamExpr::theta(0));
    c.cx(0, 1);
    c.rx(0, 1.1);
    c.rx(1, -0.4);
    c.cx(0, 1);
    c.rz_expr(1, ParamExpr::theta(1));
    c.cx(0, 1);
    c.h(0);
    c.h(1);
    c
}

fn main() {
    let circuit = variational_circuit();
    let runtime = CompilationRuntime::new(CompilerOptions::fast(), RuntimeOptions::default());
    // Three "variational iterations": the classical optimizer proposes new parameters
    // each time, and the compiler must produce fresh pulses.
    let iterations = vec![vec![0.3, 0.9], vec![1.7, -0.2], vec![2.4, 0.6]];

    for strategy in [
        Strategy::FullGrape,
        Strategy::FlexiblePartial,
        Strategy::StrictPartial,
    ] {
        let reports = runtime.compile_iterations(&circuit, &iterations, strategy);
        let mut runtime_iters = 0usize;
        let mut precompute_iters = 0usize;
        let mut last_duration = 0.0;
        for report in reports {
            let report = report.expect("compiles");
            runtime_iters += report.runtime.grape_iterations;
            precompute_iters += report.precompute.grape_iterations;
            last_duration = report.pulse_duration_ns;
        }
        println!(
            "{:<18} pulse {:>7.1} ns | pre-compute {:>6} GRAPE iters (once) | runtime {:>6} GRAPE iters across {} variational iterations",
            strategy.name(),
            last_duration,
            precompute_iters,
            runtime_iters,
            iterations.len()
        );
    }
    let metrics = runtime.metrics();
    println!(
        "\nShared cache after all batches: {} hits, {} misses, {} block requests coalesced onto another request's task (fan-out) on {} workers.",
        metrics.cache.hits, metrics.cache.misses, metrics.coalesced_waits, metrics.workers
    );
    println!("Full GRAPE pays its entire compilation cost again at every variational iteration;");
    println!("strict partial compilation pays once up front and nothing afterwards; flexible");
    println!(
        "partial compilation pays a small tuned-GRAPE cost per iteration — the Figure 7 story."
    );
}
