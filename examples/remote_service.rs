//! The compilation service over the network: an in-process `Server` on a
//! loopback port, two TCP clients at different priorities submitting
//! overlapping QAOA workloads, streamed completion events, and per-client
//! fairness metrics read back over the wire.
//!
//! This is the library form of what the `vqc-serve` / `vqc-submit` binaries do
//! across processes. Run with `cargo run --release --example remote_service`.

use std::sync::Arc;
use vqc::apps::graphs::Graph;
use vqc::apps::qaoa::qaoa_circuit;
use vqc::core::{CompilerOptions, Strategy};
use vqc::runtime::{CompilationRuntime, Priority, RuntimeOptions};
use vqc::transport::{
    Client, ClientOptions, JobEvent, JobUpdate, Server, ServerOptions, SubmitPayload,
};

fn main() {
    // The server side: a shared runtime behind a TCP listener (port 0 = pick an
    // ephemeral port; a real deployment would bind VQC_LISTEN).
    let runtime = Arc::new(CompilationRuntime::new(
        CompilerOptions::fast(),
        RuntimeOptions::default(),
    ));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&runtime),
        ServerOptions::default(),
    )
    .expect("bind a loopback port");
    let addr = server.local_addr();
    println!("serving the compilation service on {addr}");

    // Two remote clients: an interactive one at high priority and a batch one
    // at low priority. Each connection is mapped to its own service client id,
    // so fair-share scheduling and per-client metrics distinguish them.
    let graph = Graph::three_regular(6, 7).expect("3-regular graphs exist on 6 nodes");
    let circuit = qaoa_circuit(&graph, 1);
    let interactive = Client::connect(
        addr,
        ClientOptions::default()
            .with_name("interactive")
            .with_priority(Priority::HIGH),
    )
    .expect("connect");
    let batch = Client::connect(
        addr,
        ClientOptions::default()
            .with_name("batch")
            .with_priority(Priority::LOW),
    )
    .expect("connect");

    let bindings = |offset: f64| -> Vec<Vec<f64>> {
        (0..3)
            .map(|i| vec![0.35 + 0.11 * i as f64 + offset, 0.80 - 0.07 * i as f64])
            .collect()
    };
    let batch_job = batch
        .submit(SubmitPayload::Iterations {
            circuit: circuit.clone(),
            parameter_sets: bindings(0.01),
            strategy: Strategy::StrictPartial,
        })
        .expect("submit");
    let interactive_job = interactive
        .submit(SubmitPayload::Iterations {
            circuit,
            parameter_sets: bindings(0.0),
            strategy: Strategy::StrictPartial,
        })
        .expect("submit");

    // Completion events stream per iteration as the worker pool finishes
    // blocks — the interactive client sees progress, not just a final answer.
    loop {
        match interactive_job.next_update().expect("connected") {
            JobUpdate::Event(JobEvent::JobDone {
                job,
                pulse_duration_ns,
                ..
            }) => println!("interactive: iteration {job} done ({pulse_duration_ns:.1} ns)"),
            JobUpdate::Event(_) => continue,
            JobUpdate::Report(results) => {
                println!(
                    "interactive: {} iterations compiled",
                    results.iter().filter(|r| r.is_ok()).count()
                );
                break;
            }
            JobUpdate::Rejected(reason) => {
                println!("interactive: rejected — {reason}");
                break;
            }
        }
    }
    let batch_results = batch_job.wait().expect("not rejected");
    println!(
        "batch: {} iterations compiled",
        batch_results.iter().filter(|r| r.is_ok()).count()
    );

    // Fairness is observable over the wire: each client reads its own slice of
    // the runtime counters (plus the global view) with a Stats request.
    for (name, client) in [("interactive", &interactive), ("batch", &batch)] {
        let stats = client.stats().expect("stats");
        println!(
            "{name}: client {} — {} compiled, {} cache hits, {} coalesced, {:.4}s queued",
            stats.client_id,
            stats.client.compilations,
            stats.client.cache_hits,
            stats.client.coalesced_waits,
            stats.client.queue_seconds,
        );
    }
    let totals = interactive.stats().expect("stats").runtime;
    println!(
        "global: {} unique compilations for {} submissions ({} hits, {} coalesced)",
        totals.unique_compilations, totals.submissions, totals.cache.hits, totals.coalesced_waits
    );
    // Dropping the Server drains and stops it; dropping a Client mid-job would
    // instead cancel that client's outstanding submissions server-side.
}
