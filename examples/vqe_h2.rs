//! End-to-end VQE on molecular hydrogen: the variational loop of Figure 1, followed by
//! pulse-level compilation of the converged ansatz.
//!
//! Run with `cargo run --release --example vqe_h2`.

use vqc::apps::molecules::Molecule;
use vqc::apps::optimizer::NelderMead;
use vqc::apps::uccsd::uccsd_circuit;
use vqc::apps::variational::run_molecule_vqe;
use vqc::core::{CompilerOptions, PartialCompiler, Strategy};

fn main() {
    // --- the hybrid quantum-classical loop -----------------------------------------
    let optimizer = NelderMead {
        max_evaluations: 800,
        ..NelderMead::default()
    };
    let result = run_molecule_vqe(Molecule::H2, &optimizer);
    let exact = Molecule::H2.hamiltonian().min_eigenvalue(800);
    println!("VQE on H2 (UCCSD ansatz, {} parameters)", Molecule::H2.num_parameters());
    println!("  energy found : {:.6} Ha after {} circuit evaluations", result.energy, result.evaluations);
    println!("  exact ground : {:.6} Ha", exact);
    println!("  error        : {:.2e} Ha\n", (result.energy - exact).abs());

    // --- pulse-level compilation of the converged ansatz ----------------------------
    let ansatz = uccsd_circuit(Molecule::H2);
    let compiler = PartialCompiler::new(CompilerOptions::fast());
    println!("Compiling the converged H2 ansatz at the optimal parameters:");
    for strategy in [Strategy::GateBased, Strategy::StrictPartial, Strategy::FlexiblePartial] {
        let report = compiler
            .compile(&ansatz, &result.parameters, strategy)
            .expect("H2 ansatz compiles");
        println!(
            "  {:<18} {:>8.1} ns  ({:.2}x speedup, runtime latency {} GRAPE iterations)",
            strategy.name(),
            report.pulse_duration_ns,
            report.pulse_speedup(),
            report.runtime.grape_iterations
        );
    }
    println!("\nEvery nanosecond saved compounds exponentially in fidelity: decoherence error grows");
    println!("exponentially with pulse duration, which is why the paper optimizes pulse time.");
}
