//! End-to-end VQE on molecular hydrogen: the variational loop of Figure 1, followed by
//! pulse-level compilation of the converged ansatz on the concurrent runtime, with a
//! cache snapshot persisted so a re-run warm-starts instantly.
//!
//! Run with `cargo run --release --example vqe_h2`.

use vqc::apps::molecules::Molecule;
use vqc::apps::optimizer::NelderMead;
use vqc::apps::uccsd::uccsd_circuit;
use vqc::apps::variational::run_molecule_vqe;
use vqc::core::{CompilerOptions, Strategy};
use vqc::runtime::{CompilationRuntime, RuntimeOptions};

fn main() {
    // --- the hybrid quantum-classical loop -----------------------------------------
    let optimizer = NelderMead {
        max_evaluations: 800,
        ..NelderMead::default()
    };
    let result = run_molecule_vqe(Molecule::H2, &optimizer);
    let exact = Molecule::H2.hamiltonian().min_eigenvalue(800);
    println!(
        "VQE on H2 (UCCSD ansatz, {} parameters)",
        Molecule::H2.num_parameters()
    );
    println!(
        "  energy found : {:.6} Ha after {} circuit evaluations",
        result.energy, result.evaluations
    );
    println!("  exact ground : {:.6} Ha", exact);
    println!(
        "  error        : {:.2e} Ha\n",
        (result.energy - exact).abs()
    );

    // --- pulse-level compilation of the converged ansatz ----------------------------
    // Warm-start from a previous run's snapshot when one exists: re-running this
    // example skips all GRAPE work the first run already paid for.
    let snapshot_path = std::env::temp_dir().join("vqc_vqe_h2.snapshot");
    let runtime = CompilationRuntime::with_warm_start(
        CompilerOptions::fast(),
        RuntimeOptions::default(),
        &snapshot_path,
    )
    .unwrap_or_else(|_| {
        CompilationRuntime::new(CompilerOptions::fast(), RuntimeOptions::default())
    });

    let ansatz = uccsd_circuit(Molecule::H2);
    println!("Compiling the converged H2 ansatz at the optimal parameters:");
    for strategy in [
        Strategy::GateBased,
        Strategy::StrictPartial,
        Strategy::FlexiblePartial,
    ] {
        let report = runtime
            .compile(&ansatz, &result.parameters, strategy)
            .expect("H2 ansatz compiles");
        println!(
            "  {:<18} {:>8.1} ns  ({:.2}x speedup, runtime latency {} GRAPE iterations)",
            strategy.name(),
            report.pulse_duration_ns,
            report.pulse_speedup(),
            report.runtime.grape_iterations
        );
    }
    match runtime.save_snapshot(&snapshot_path) {
        Ok(()) => println!(
            "\nPulse cache persisted to {} for warm re-runs.",
            snapshot_path.display()
        ),
        Err(error) => println!("\nSnapshot not saved: {error}"),
    }
    println!("Every nanosecond saved compounds exponentially in fidelity: decoherence error grows");
    println!("exponentially with pulse duration, which is why the paper optimizes pulse time.");
}
