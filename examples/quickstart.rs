//! Quickstart: compile one small variational circuit with all four strategies on the
//! concurrent compilation runtime.
//!
//! Run with `cargo run --release --example quickstart`.

use vqc::circuit::{Circuit, ParamExpr};
use vqc::core::{CompilerOptions, Strategy};
use vqc::runtime::{CompilationRuntime, RuntimeOptions};

fn main() {
    // A Figure-3-style variational circuit: fixed entangling sections surrounding two
    // parameterized Rz rotations.
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rz_expr(1, ParamExpr::theta(0));
    circuit.cx(0, 1);
    circuit.rx(0, 0.9);
    circuit.cx(0, 1);
    circuit.rz_expr(1, ParamExpr::theta(1));
    circuit.cx(0, 1);

    let params = [0.5, 1.3];
    let runtime = CompilationRuntime::new(CompilerOptions::fast(), RuntimeOptions::default());

    println!(
        "Compiling a 2-qubit variational circuit ({} gates, {} parameters) on {} workers:\n",
        circuit.len(),
        circuit.num_parameters(),
        runtime.workers()
    );
    println!(
        "{:<18} {:>14} {:>10} {:>22} {:>20}",
        "Strategy", "Pulse (ns)", "Speedup", "Pre-compute GRAPE iters", "Runtime GRAPE iters"
    );
    for strategy in Strategy::all() {
        let report = runtime
            .compile(&circuit, &params, strategy)
            .expect("the quickstart circuit compiles");
        println!(
            "{:<18} {:>14.1} {:>9.2}x {:>22} {:>20}",
            strategy.name(),
            report.pulse_duration_ns,
            report.pulse_speedup(),
            report.precompute.grape_iterations,
            report.runtime.grape_iterations
        );
    }
    let metrics = runtime.metrics();
    println!(
        "\nShared pulse cache: {} hits / {} misses across the four strategies.",
        metrics.cache.hits, metrics.cache.misses
    );
    println!("Strict partial compilation keeps the (near-)GRAPE pulse speedup while paying zero");
    println!("runtime compilation latency — the paper's headline trade-off.");
}
